"""The campaign job engine: priority scheduling over sharded pools.

:class:`JobEngine` turns the library's synthesis→BIST-campaign unit of
work (:func:`repro.suite.sweep.sweep_member`) into a long-running,
multi-tenant batch facility -- the "millions of users" shape of the
ROADMAP, where clients submit jobs to a shared service instead of each
linking the library and owning one in-process pool:

* **Priority queue with admission control.**  Jobs carry an integer
  ``priority`` (higher runs earlier; FIFO within a priority).  The queue
  is bounded: once ``max_queued`` jobs are waiting, further submissions
  raise :exc:`~repro.exceptions.AdmissionError` (HTTP 429 at the service
  boundary) instead of growing without bound.
* **Sharded persistent pools, bounded in-flight work.**  The engine runs
  ``shards`` executor threads, each owning one long-lived
  :class:`~repro.faults.pool.CampaignPool` (``pool_workers`` processes;
  ``pool_workers=0`` runs campaigns in-process).  A job is pinned to the
  shard ``int(subject_sha256, 16) % shards``, so repeated submissions of
  the same subject land on the same pool and hit its compiled-subject
  cache.  At most one job runs per shard, so in-flight work is bounded by
  the shard count.
* **SHA-256 content dedupe.**  A job's identity is the SHA-256 over its
  canonical payload (the subject's content hash -- the same
  SHA-256-of-content scheme as the corpus ledger, the pool subject cache
  and the checkpoint keys -- plus the deterministic config fields).
  Submitting a job whose identity matches a queued, running or completed
  job returns *that* job instead of recomputing ("dedupe hits"
  telemetry); failed and cancelled jobs are not reused.
* **Cancellation.**  Queued jobs cancel immediately; a running campaign
  is never preempted (its pool workers would be left mid-slab) and
  reports ``"running"`` back instead.
* **Graceful drain.**  ``close(drain=True)`` stops admission, lets every
  queued and running job finish, then shuts the pools down;
  ``drain=False`` cancels the queue and only waits for the in-flight
  jobs.
* **Durability (opt-in).**  ``journal_dir=`` arms a write-ahead job
  journal (:mod:`repro.service.journal`): every submission, state
  transition and canonical result is appended (and fsynced per policy)
  *before* the in-memory state reflects it.  A restarted engine replays
  the journal -- completed results and the dedupe table come back
  verbatim, jobs that were queued or running when the process died are
  requeued (their campaigns resume from per-job
  :class:`~repro.faults.checkpoint.CampaignCheckpoint` snapshots under
  ``<journal_dir>/checkpoints/``, which startup also garbage-collects)
  -- so a ``kill -9`` mid-sweep loses no admitted job and double-reports
  none.

Everything here is deterministic where it matters: the *record* a job
produces is a pure function of its member and config (see
:func:`~repro.suite.sweep.sweep_member`), so a sweep driven through the
engine is bit-identical to the in-process path regardless of priorities,
shard assignment, dedupe or retries.  Campaign telemetry stays coherent
under concurrency because ``CAMPAIGN_STATS`` is per-thread and each shard
executor is one thread.
"""

from __future__ import annotations

import hashlib
import heapq
import itertools
import json
import os
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from ..exceptions import AdmissionError, PoolClosed, ReproError
from ..faults.chaos import ChaosState, service_generation
from ..fsm import kiss
from ..suite import corpus as corpus_mod
from ..suite.sweep import SweepConfig, sweep_member
from .journal import JobJournal

__all__ = ["AdhocMember", "Job", "JobEngine", "job_payload_key"]

#: job lifecycle states.  ``done`` means the member record exists and has
#: ``status == "ok"``; ``failed`` covers both an error record (the
#: campaign raised a structured :exc:`~repro.exceptions.ReproError`, e.g.
#: a :exc:`~repro.exceptions.WorkerCrash` after chaos killed a pool
#: worker) and an unexpected executor exception.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

_TERMINAL = (DONE, FAILED, CANCELLED)

#: completed jobs retained for polling/dedupe before FIFO eviction.
_DEFAULT_RETENTION = 4096


@dataclass(frozen=True)
class AdhocMember:
    """A corpus-member-shaped wrapper for an inline KISS2 subject.

    Lets clients submit machines that are not in the corpus: the job
    payload carries the KISS2 text itself, and this wrapper gives it the
    :class:`~repro.suite.corpus.CorpusMember` duck surface that
    :func:`~repro.suite.sweep.sweep_member` consumes.  The ledger
    identity is the SHA-256 of the text bytes (the kiss-file convention).
    """

    name: str
    text: str
    family: str = "adhoc"
    kind: str = "kiss-inline"

    @property
    def member_id(self) -> str:
        return f"{self.family}/{self.name}"

    def build(self):
        return kiss.loads(self.text, name=self.name)

    def sha256(self) -> str:
        return hashlib.sha256(self.text.encode("utf-8")).hexdigest()


def _canonical_json(payload) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def resolve_member(payload: Mapping):
    """The job payload's subject: a corpus member record or inline KISS2.

    ``{"member": <manifest record>}`` rebuilds a
    :class:`~repro.suite.corpus.CorpusMember` exactly like the sweep
    reproduction path; ``{"kiss": <text>, "name": <str>}`` wraps an
    inline machine.  Returns ``(member, subject_sha256)``.
    """
    if "member" in payload:
        record = payload["member"]
        if not isinstance(record, Mapping):
            raise ReproError("job 'member' must be a corpus manifest record")
        member = corpus_mod.member_from_manifest(record)
        claimed = record.get("sha256")
        subject_sha = str(claimed) if claimed else member.sha256()
        return member, subject_sha
    if "kiss" in payload:
        text = payload["kiss"]
        if not isinstance(text, str) or not text.strip():
            raise ReproError("job 'kiss' must be non-empty KISS2 text")
        member = AdhocMember(
            name=str(payload.get("name", "machine")), text=text
        )
        return member, member.sha256()
    raise ReproError("job payload needs 'member' (manifest record) or 'kiss'")


def job_payload_key(
    member_id: str, subject_sha256: str, config: SweepConfig
) -> str:
    """A job's content identity: SHA-256 over member id + subject hash +
    config.

    Only the deterministic config fields participate -- the wall-clock
    knobs (``workers``/``pool``) cannot change the canonical record, so
    two submissions differing only there are the same job and dedupe onto
    one computation.  The member id *does* participate: the metrics
    record embeds it, so two members with byte-identical machines but
    different names are different jobs.
    """
    payload = config.to_dict()
    for transient in ("workers", "pool"):
        payload.pop(transient, None)
    text = _canonical_json(
        {"member": member_id, "subject": subject_sha256, "config": payload}
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One submitted campaign job and its lifecycle."""

    job_id: str
    key: str
    subject_sha256: str
    member: object
    config: SweepConfig
    priority: int
    shard: int
    state: str = QUEUED
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    record: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    dedupe_hits: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in _TERMINAL

    def describe(self, full: bool = True) -> Dict[str, object]:
        """JSON-able view; ``full=False`` omits the (possibly large) record."""
        out: Dict[str, object] = {
            "job": self.job_id,
            "key": self.key,
            "subject_sha256": self.subject_sha256,
            "member": getattr(self.member, "member_id", str(self.member)),
            "priority": self.priority,
            "shard": self.shard,
            "state": self.state,
            "submitted_unix": round(self.submitted_unix, 3),
            "dedupe_hits": self.dedupe_hits,
        }
        if self.started_unix is not None:
            out["started_unix"] = round(self.started_unix, 3)
        if self.finished_unix is not None:
            out["finished_unix"] = round(self.finished_unix, 3)
        if self.error is not None:
            out["error"] = self.error
        if full and self.record is not None:
            out["record"] = self.record
        return out


class JobEngine:
    """Async batch job engine over sharded :class:`CampaignPool`\\ s."""

    def __init__(
        self,
        shards: int = 1,
        pool_workers: int = 2,
        max_queued: int = 64,
        retention: int = _DEFAULT_RETENTION,
        pool_kwargs: Optional[Dict[str, object]] = None,
        journal_dir: Optional[str] = None,
        fsync: str = "always",
        fsync_interval: float = 1.0,
        checkpoint_max_age: float = 7 * 86400.0,
        chaos=None,
    ) -> None:
        if shards < 1:
            raise ReproError(f"job engine needs >= 1 shard, got {shards}")
        if pool_workers < 0:
            raise ReproError(f"pool_workers must be >= 0, got {pool_workers}")
        if max_queued < 1:
            raise ReproError(f"max_queued must be >= 1, got {max_queued}")
        if retention < 1:
            raise ReproError(f"retention must be >= 1, got {retention}")
        self.shards = shards
        self.pool_workers = pool_workers
        self.max_queued = max_queued
        self.retention = retention
        self._cond = threading.Condition()
        self._seq = itertools.count()
        self._heaps: List[List[Tuple[int, int, str]]] = [
            [] for _ in range(shards)
        ]
        self._jobs: Dict[str, Job] = {}
        self._by_key: Dict[str, str] = {}
        self._finished_order: List[str] = []
        self._queued = 0
        self._running = 0
        self._draining = False
        self._closed = False
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "rejected": 0,
            "dedupe_hits": 0,
        }
        self._shard_telemetry: List[Optional[Dict[str, object]]] = [
            None
        ] * shards
        # Service-scope chaos (kill_server / torn_tail / http_stall);
        # generation-gated through the environment so a supervisor's
        # restart runs recovery chaos-free.
        self.chaos_state = ChaosState(
            chaos, scope="service", worker_index=0,
            generation=service_generation(),
        )
        # Durability: checkpoint GC, then journal replay, both before the
        # shard threads can observe (or race) any restored state.
        self.journal: Optional[JobJournal] = None
        self._checkpoint_dir: Optional[str] = None
        self.recovery: Dict[str, object] = {
            "replayed_records": 0,
            "restored_done": 0,
            "restored_failed": 0,
            "restored_cancelled": 0,
            "requeued": 0,
            "torn_tail": False,
            "checkpoints_removed": 0,
        }
        if journal_dir is not None:
            from ..faults.checkpoint import CampaignCheckpoint

            os.makedirs(journal_dir, exist_ok=True)
            self._checkpoint_dir = os.path.join(journal_dir, "checkpoints")
            swept = CampaignCheckpoint.gc(
                self._checkpoint_dir, max_age=checkpoint_max_age
            )
            self.recovery["checkpoints_removed"] = len(swept["removed"])
            self.journal = JobJournal(
                os.path.join(journal_dir, "journal.jsonl"),
                fsync=fsync,
                fsync_interval=fsync_interval,
                chaos=self.chaos_state if self.chaos_state.armed else None,
            )
            self._replay_journal()
        self._pools = []
        if pool_workers:
            from ..faults.pool import CampaignPool

            kwargs = dict(pool_kwargs or {})
            self._pools = [
                CampaignPool(pool_workers, **kwargs) for _ in range(shards)
            ]
        else:
            self._pools = [None] * shards
        self._threads = [
            threading.Thread(
                target=self._shard_loop,
                args=(index,),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            for index in range(shards)
        ]
        for thread in self._threads:
            thread.start()

    # -- durability ----------------------------------------------------------

    def _journal_append(self, kind: str, data: Dict[str, object],
                        required: bool = True) -> None:
        """Write-ahead append; ``required=False`` tolerates append
        failure (the in-memory transition proceeds and the journal is
        merely behind -- replay then errs towards requeueing, never
        towards losing an observable result)."""
        if self.journal is None:
            return
        try:
            self.journal.append(kind, data)
        except (OSError, ReproError):
            if required:
                raise
            self.stats["journal_errors"] = (
                self.stats.get("journal_errors", 0) + 1
            )

    def _replay_journal(self) -> None:
        """Rebuild job state from the journal (constructor-only: runs
        before the shard threads start, so no locking is needed).

        Completed jobs come back verbatim -- record, error, dedupe-table
        entry -- and jobs that were queued or running when the process
        died are requeued in their original submission order with their
        original priorities.  :exc:`~repro.exceptions.JournalCorrupt`
        propagates (the journal quarantines itself first).
        """
        replay = self.journal.replay()
        self.recovery["replayed_records"] = len(replay.records)
        self.recovery["torn_tail"] = replay.torn_tail
        restored: Dict[str, Job] = {}
        order: List[str] = []
        seqs: Dict[str, int] = {}
        max_seq = -1
        unresolved = 0
        for entry in replay.records:
            data = entry.data
            if entry.kind == "submit":
                try:
                    member, subject_sha = resolve_member(data["subject"])
                    config = SweepConfig.from_dict(dict(data["config"]))
                except (ReproError, KeyError, TypeError, ValueError):
                    # The subject no longer resolves (corpus drift, a
                    # config field from a different version): drop the
                    # job rather than refuse to boot -- a client still
                    # polling it gets a 404 and resubmits.
                    unresolved += 1
                    continue
                job = Job(
                    job_id=str(data["job"]),
                    key=str(data["key"]),
                    subject_sha256=subject_sha,
                    member=member,
                    config=config,
                    priority=int(data.get("priority", 0)),
                    shard=int(subject_sha[:16], 16) % self.shards,
                )
                submitted = data.get("submitted_unix")
                if isinstance(submitted, (int, float)):
                    job.submitted_unix = float(submitted)
                seq = int(data.get("seq", 0))
                seqs[job.job_id] = seq
                max_seq = max(max_seq, seq)
                restored[job.job_id] = job
                order.append(job.job_id)
            elif entry.kind == "state":
                job = restored.get(str(data.get("job")))
                state = data.get("state")
                if job is not None and state in (RUNNING, CANCELLED):
                    job.state = state
                    if state == CANCELLED:
                        job.finished_unix = data.get("unix")
            elif entry.kind == "result":
                job = restored.get(str(data.get("job")))
                if job is not None:
                    state = data.get("state")
                    job.state = state if state in (DONE, FAILED) else FAILED
                    job.record = data.get("record")
                    error = data.get("error")
                    job.error = None if error is None else str(error)
                    job.finished_unix = data.get("unix")
        if unresolved:
            self.recovery["unresolved"] = unresolved

        for job_id in order:
            job = restored[job_id]
            self._jobs[job_id] = job
            self.stats["submitted"] += 1
            if job.state == DONE:
                self._by_key[job.key] = job_id
                self.stats["completed"] += 1
                self.recovery["restored_done"] += 1
                self._note_finished(job)
            elif job.state == FAILED:
                self.stats["failed"] += 1
                self.recovery["restored_failed"] += 1
                self._note_finished(job)
            elif job.state == CANCELLED:
                self.stats["cancelled"] += 1
                self.recovery["restored_cancelled"] += 1
                self._note_finished(job)
            else:
                # Queued -- or running when the process died, which the
                # write-ahead ordering makes indistinguishable from "not
                # finished": requeue with the original seq so FIFO within
                # a priority survives the restart.  An interrupted
                # campaign resumes from its checkpoint snapshot.
                job.state = QUEUED
                job.started_unix = None
                heapq.heappush(
                    self._heaps[job.shard],
                    (-job.priority, seqs.get(job_id, 0), job_id),
                )
                self._by_key[job.key] = job_id
                self._queued += 1
                self.recovery["requeued"] = (
                    int(self.recovery["requeued"]) + 1
                )
        self._seq = itertools.count(max_seq + 1)

    # -- submission ----------------------------------------------------------

    def submit(
        self, payload: Mapping, priority: int = 0
    ) -> Tuple[Job, bool]:
        """Admit one job; returns ``(job, deduped)``.

        ``payload`` carries the subject (see :func:`resolve_member`) and
        optionally ``"config"`` (:class:`SweepConfig` fields).  A payload
        whose content identity matches a queued/running/done job returns
        that job with ``deduped=True`` -- the caller gets the shared
        result without a second campaign.  Raises
        :exc:`~repro.exceptions.AdmissionError` when the bounded queue is
        full or the engine is draining.
        """
        member, subject_sha = resolve_member(payload)
        config_payload = payload.get("config") or {}
        if not isinstance(config_payload, Mapping):
            raise ReproError("job 'config' must be a mapping of sweep fields")
        config = SweepConfig.from_dict(dict(config_payload))
        key = job_payload_key(
            getattr(member, "member_id", member.name), subject_sha, config
        )
        if "member" in payload:
            subject_payload: Dict[str, object] = {
                "member": dict(payload["member"])
            }
        else:
            subject_payload = {
                "kiss": payload["kiss"],
                "name": str(payload.get("name", "machine")),
            }
        with self._cond:
            if self._closed:
                raise PoolClosed("job engine is closed")
            existing_id = self._by_key.get(key)
            if existing_id is not None:
                existing = self._jobs.get(existing_id)
                if existing is not None and existing.state in (
                    QUEUED,
                    RUNNING,
                    DONE,
                ):
                    existing.dedupe_hits += 1
                    self.stats["dedupe_hits"] += 1
                    return existing, True
            if self._draining:
                self.stats["rejected"] += 1
                raise AdmissionError("service is draining; not accepting jobs")
            if self._queued >= self.max_queued:
                self.stats["rejected"] += 1
                raise AdmissionError(
                    f"admission control: {self._queued} jobs queued "
                    f"(limit {self.max_queued}); retry later"
                )
            seq = next(self._seq)
            shard = int(subject_sha[:16], 16) % self.shards
            job = Job(
                job_id=f"j{seq:06d}",
                key=key,
                subject_sha256=subject_sha,
                member=member,
                config=config,
                priority=int(priority),
                shard=shard,
            )
            # Write-ahead: the submission is durable before it becomes
            # visible -- a failed append refuses the job (the client can
            # retry) rather than admitting work that would vanish on
            # restart.
            self._journal_append(
                "submit",
                {
                    "job": job.job_id,
                    "key": key,
                    "subject_sha256": subject_sha,
                    "priority": job.priority,
                    "seq": seq,
                    "subject": subject_payload,
                    "config": config.to_dict(),
                    "submitted_unix": round(job.submitted_unix, 3),
                },
            )
            self._jobs[job.job_id] = job
            self._by_key[key] = job.job_id
            heapq.heappush(self._heaps[shard], (-job.priority, seq, job.job_id))
            self._queued += 1
            self.stats["submitted"] += 1
            self._cond.notify_all()
            return job, False

    # -- lifecycle queries ---------------------------------------------------

    def job(self, job_id: str) -> Job:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise ReproError(f"unknown job {job_id!r}") from None

    def jobs(self) -> List[Job]:
        with self._cond:
            return list(self._jobs.values())

    def cancel(self, job_id: str) -> str:
        """Cancel a queued job; returns the job's state afterwards.

        Running jobs are not preempted (the state stays ``running``);
        terminal jobs report their final state unchanged.
        """
        with self._cond:
            job = self._jobs.get(job_id)
            if job is None:
                raise ReproError(f"unknown job {job_id!r}")
            if job.state == QUEUED:
                self._journal_append(
                    "state",
                    {
                        "job": job.job_id,
                        "state": CANCELLED,
                        "unix": round(time.time(), 3),
                    },
                )
                job.state = CANCELLED
                job.finished_unix = time.time()
                self._queued -= 1
                self.stats["cancelled"] += 1
                if self._by_key.get(job.key) == job.job_id:
                    del self._by_key[job.key]
                self._note_finished(job)
                self._cond.notify_all()
            return job.state

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while True:
                job = self._jobs.get(job_id)
                if job is None:
                    raise ReproError(f"unknown job {job_id!r}")
                if job.terminal:
                    return job
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        raise ReproError(
                            f"timed out waiting for job {job_id}"
                        )
                self._cond.wait(remaining if remaining is not None else 1.0)

    def as_completed(
        self, job_ids: Iterable[str], timeout: Optional[float] = None
    ) -> Iterator[Job]:
        """Yield the given jobs as each reaches a terminal state.

        Completion order, not submission order -- the streaming endpoint
        sits directly on this.  ``timeout`` bounds the wait for *each*
        next completion.
        """
        pending = list(dict.fromkeys(job_ids))
        with self._cond:
            for job_id in pending:
                if job_id not in self._jobs:
                    raise ReproError(f"unknown job {job_id!r}")
        while pending:
            ready = None
            deadline = None if timeout is None else time.monotonic() + timeout
            with self._cond:
                while ready is None:
                    for job_id in pending:
                        job = self._jobs.get(job_id)
                        if job is None or job.terminal:
                            ready = job_id
                            break
                    if ready is not None:
                        break
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise ReproError(
                                "timed out waiting for job completion"
                            )
                    self._cond.wait(
                        remaining if remaining is not None else 1.0
                    )
                job = self._jobs.get(ready)
            pending.remove(ready)
            if job is not None:
                yield job

    # -- execution -----------------------------------------------------------

    def _next_job(self, shard: int) -> Optional[Job]:
        """Pop the highest-priority queued job of one shard (caller holds
        the lock); lazily discards entries whose job was cancelled."""
        heap = self._heaps[shard]
        while heap:
            _neg_priority, _seq, job_id = heapq.heappop(heap)
            job = self._jobs.get(job_id)
            if job is not None and job.state == QUEUED:
                return job
        return None

    def _shard_loop(self, shard: int) -> None:
        pool = self._pools[shard]
        while True:
            with self._cond:
                job = self._next_job(shard)
                while job is None and not self._closed:
                    self._cond.wait(0.5)
                    job = self._next_job(shard)
                if job is None:
                    return  # closed and drained
                job.state = RUNNING
                job.started_unix = time.time()
                self._queued -= 1
                self._running += 1
            # Best-effort transition record: losing it merely requeues
            # the job on restart, which the terminal-result write-ahead
            # below makes safe anyway.
            self._journal_append(
                "state",
                {
                    "job": job.job_id,
                    "state": RUNNING,
                    "unix": round(job.started_unix, 3),
                },
                required=False,
            )
            record = None
            error = None
            try:
                extra: Dict[str, object] = {}
                if self._checkpoint_dir is not None:
                    extra["checkpoint"] = os.path.join(
                        self._checkpoint_dir, f"{job.key}.ckpt"
                    )
                record = sweep_member(job.member, job.config, pool, **extra)
            # A failed job must transition to FAILED with its traceback
            # attached, never take the shard's executor thread down --
            # capturing everything here *is* the error path.
            except BaseException:  # repro-lint: disable=RL006
                error = traceback.format_exc()
            if record is not None:
                if record.get("status") == "ok":
                    final_state: str = DONE
                    final_error: Optional[str] = None
                else:
                    # A structured campaign failure (ReproError --
                    # including WorkerCrash/JobTimeout from the pool) is
                    # already folded into the record by sweep_member;
                    # surface it as a failed job rather than a hung or
                    # "ok" one.
                    final_state = FAILED
                    final_error = str(record.get("error"))
            else:
                final_state = FAILED
                final_error = error
            # Write-ahead: the terminal outcome hits the journal before
            # any client can observe it, so a crash after this point
            # cannot double-run the job, and a crash before it requeues
            # cleanly (the campaign resumes from its checkpoint).
            self._journal_append(
                "result",
                {
                    "job": job.job_id,
                    "state": final_state,
                    "record": record,
                    "error": final_error,
                    "unix": round(time.time(), 3),
                },
                required=False,
            )
            self.chaos_state.after_job_result()
            telemetry = self._capture_telemetry()
            with self._cond:
                job.finished_unix = time.time()
                self._running -= 1
                self._shard_telemetry[shard] = telemetry
                job.record = record
                job.state = final_state
                job.error = final_error
                if final_state == DONE:
                    self.stats["completed"] += 1
                else:
                    self.stats["failed"] += 1
                    if self._by_key.get(job.key) == job.job_id:
                        del self._by_key[job.key]
                self._note_finished(job)
                self._cond.notify_all()

    @staticmethod
    def _capture_telemetry() -> Dict[str, object]:
        """This thread's last-campaign telemetry, JSON-able."""
        from ..faults.engine import CAMPAIGN_STATS, campaign_telemetry

        snapshot = campaign_telemetry()
        resilience = CAMPAIGN_STATS.get("resilience") or {}
        snapshot["resilience"] = {
            key: resilience.get(key, 0)
            for key in (
                "retries",
                "respawns",
                "timeouts",
                "redispatched_faults",
                "redispatched_chunks",
                "resumed",
            )
        }
        return snapshot

    def _note_finished(self, job: Job) -> None:
        """Retention bookkeeping (caller holds the lock)."""
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > self.retention:
            stale_id = self._finished_order.pop(0)
            stale = self._jobs.pop(stale_id, None)
            if stale is not None and self._by_key.get(stale.key) == stale_id:
                del self._by_key[stale.key]

    # -- telemetry / shutdown ------------------------------------------------

    def metrics(self) -> Dict[str, object]:
        """The ``/metrics`` payload: engine counters + pool + campaign
        telemetry, all plain JSON-able values."""
        with self._cond:
            service = {
                **self.stats,
                "queued": self._queued,
                "running": self._running,
                "max_queued": self.max_queued,
                "shards": self.shards,
                "pool_workers": self.pool_workers,
                "max_inflight": self.shards,
                "draining": self._draining,
                "jobs_tracked": len(self._jobs),
            }
            campaigns = [
                dict(snapshot) if snapshot else None
                for snapshot in self._shard_telemetry
            ]
        pools = [
            pool.stats_snapshot() if pool is not None else None
            for pool in self._pools
        ]
        journal: Optional[Dict[str, object]] = None
        if self.journal is not None:
            journal = self.journal.stats_snapshot()
            journal["recovery"] = dict(self.recovery)
        return {
            "service": service,
            "pools": pools,
            "campaigns": campaigns,
            "journal": journal,
        }

    def drain(self) -> None:
        """Stop admitting; existing jobs keep running (half of ``close``)."""
        with self._cond:
            self._draining = True

    def close(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Shut the engine down; idempotent.

        ``drain=True`` (the graceful path) refuses new admissions, lets
        every queued and running job finish, then stops the executor
        threads and closes the pools.  ``drain=False`` cancels the queue
        first and only waits for the in-flight jobs.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._closed and not self._threads:
                return
            self._draining = True
            if not drain:
                for job in self._jobs.values():
                    if job.state == QUEUED:
                        job.state = CANCELLED
                        job.finished_unix = time.time()
                        self._queued -= 1
                        self.stats["cancelled"] += 1
                        if self._by_key.get(job.key) == job.job_id:
                            del self._by_key[job.key]
                        self._note_finished(job)
            while self._queued or self._running:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                self._cond.wait(min(remaining or 0.5, 0.5))
            self._closed = True
            self._cond.notify_all()
        for thread in self._threads:
            thread.join(timeout=5.0)
        self._threads = []
        for pool in self._pools:
            if pool is not None:
                pool.close()
        if self.journal is not None:
            self.journal.close()

    def __enter__(self) -> "JobEngine":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
