"""Append-only JSONL write-ahead journal for the campaign service.

The :class:`~repro.service.jobs.JobEngine` keeps all job state in memory;
this module is what makes that state survive a crash.  Every externally
visible fact about a job -- its submission, its state transitions, and
its canonical metrics record -- is appended to one journal file *before*
the in-memory structures reflect it (write-ahead ordering), so a ``kill
-9`` at any instant loses at most work that can be recomputed, never a
result a client was already able to observe.

Format
------

One JSON object per line::

    {"data": {...}, "kind": "submit|state|result", "seq": N, "sha256": H, "v": 1}

``sha256`` is the hex digest over the canonical serialisation (sorted
keys, compact separators) of the record *without* the ``sha256`` field;
``seq`` is a strictly increasing append counter.  Appends are a single
``write()`` of the full line followed by a flush, with the fsync policy
deciding when the bytes are forced to the platter:

``"always"``
    ``os.fsync`` after every append -- the durability default.  Campaign
    jobs run for seconds, so one fsync per job event is noise.
``"interval"``
    fsync at most once per ``fsync_interval`` seconds (and always on
    close) -- for journals on slow media under high submission rates.
``"never"``
    leave flushing to the OS page cache -- tests and throwaway runs.

Replay semantics
----------------

:meth:`JobJournal.replay` reads the file front to back, verifying every
record's hash and sequence.  Two failure classes are deliberately kept
apart:

* a defective **final** record (no trailing newline, unparseable JSON,
  or a hash mismatch) is the signature of a torn write -- the process
  died mid-append.  The record is dropped, ``torn_tail`` telemetry is
  set, and replay succeeds: write-ahead ordering guarantees the lost
  record's effect never became visible to a client.
* a defective record **before** the final line means durably written
  bytes were damaged (bit rot, truncation in the middle, a hostile
  edit).  Replaying past it could resurrect wrong job state, so the
  journal is *quarantined* -- renamed to ``<path>.corrupt`` -- and
  :exc:`~repro.exceptions.JournalCorrupt` is raised with the line number
  and reason.  A fresh journal starts in its place on the next boot.

The engine's recovery pass (:meth:`JobEngine._replay_journal`) folds the
replayed records into jobs: completed results are restored verbatim
(JSON round-trips bit-identically), the dedupe table is rebuilt, and
jobs that were queued or running when the process died are requeued.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import JournalCorrupt, ReproError

__all__ = ["JobJournal", "JournalRecord", "JournalReplay", "record_digest"]

_VERSION = 1

#: append record kinds: job admitted / lifecycle transition / terminal
#: outcome (with the canonical metrics record when one exists).
KINDS = ("submit", "state", "result")

FSYNC_POLICIES = ("always", "interval", "never")


def _canonical(payload: Dict[str, object]) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_digest(seq: int, kind: str, data: Dict[str, object]) -> str:
    """The per-record integrity hash: SHA-256 over the canonical record
    body (everything but the ``sha256`` field itself)."""
    body = _canonical({"data": data, "kind": kind, "seq": seq, "v": _VERSION})
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JournalRecord:
    """One verified journal entry."""

    seq: int
    kind: str
    data: Dict[str, object]


@dataclass
class JournalReplay:
    """The outcome of replaying a journal file."""

    records: List[JournalRecord] = field(default_factory=list)
    torn_tail: bool = False
    bytes_read: int = 0

    @property
    def max_seq(self) -> int:
        return self.records[-1].seq if self.records else -1


class JobJournal:
    """One append-only journal file with per-record SHA-256 integrity.

    Thread-safe: the engine appends from shard executor threads and HTTP
    handler threads concurrently; a single lock serialises appends so
    each record is one contiguous ``write()``.
    """

    def __init__(
        self,
        path: str,
        fsync: str = "always",
        fsync_interval: float = 1.0,
        chaos=None,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise ReproError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{FSYNC_POLICIES}"
            )
        if fsync_interval <= 0:
            raise ReproError(
                f"fsync_interval must be > 0, got {fsync_interval}"
            )
        self.path = path
        self.fsync = fsync
        self.fsync_interval = fsync_interval
        self._chaos = chaos
        self._lock = threading.Lock()
        self._handle = None
        self._seq = 0
        self._last_fsync: Optional[float] = None
        self._closed = False
        self.stats: Dict[str, int] = {
            "appends": 0,
            "fsyncs": 0,
            "bytes_written": 0,
            "replayed_records": 0,
            "torn_tail": 0,
        }

    # -- replay ---------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Verify and return every record; see the module docstring for
        the torn-tail / corruption split.  Must run before :meth:`append`
        (the append counter resumes past the replayed sequence)."""
        replay = JournalReplay()
        try:
            with open(self.path, "rb") as handle:
                raw = handle.read()
        except FileNotFoundError:
            return replay
        except OSError as exc:
            raise ReproError(f"cannot read journal {self.path!r}: {exc}") from exc
        replay.bytes_read = len(raw)
        if not raw:
            return replay

        lines = raw.split(b"\n")
        # A well-formed journal ends with a newline, leaving one empty
        # trailing element; anything else is a candidate torn tail.
        complete, tail = lines[:-1], lines[-1]
        defect: Optional[Tuple[int, str]] = None
        expected_seq = 0
        for index, line in enumerate(complete):
            if not line.strip():
                continue
            record, reason = self._verify_line(line, expected_seq)
            if record is None:
                defect = (index + 1, reason or "unreadable record")
                break
            expected_seq = record.seq + 1
            replay.records.append(record)
        if defect is not None:
            # Damage strictly before the file's final line: quarantine.
            # (A bad last *complete* line with nothing after it is a torn
            # tail -- the newline made it to disk but the payload did
            # not fully survive the crash.)  A sequence gap is corruption
            # wherever it sits: a torn write mangles bytes (JSON or hash
            # failure), it cannot produce a hash-valid record whose seq
            # skips -- that means a middle record was deleted.
            is_gap = defect[1].startswith("sequence gap")
            if is_gap or defect[0] < len(complete) or tail.strip():
                quarantined = self._quarantine()
                raise JournalCorrupt(
                    f"journal {self.path!r} corrupt at line {defect[0]}: "
                    f"{defect[1]}; quarantined to {quarantined!r}",
                    path=self.path,
                    line_no=defect[0],
                    reason=defect[1],
                    quarantined=quarantined,
                )
            replay.torn_tail = True
        elif tail.strip():
            record, _reason = self._verify_line(tail, expected_seq)
            if record is not None:
                # The newline was lost but the record itself is intact
                # and verified -- keep it (the next append re-terminates
                # the file).
                replay.records.append(record)
            replay.torn_tail = record is None
        self._seq = replay.max_seq + 1
        self.stats["replayed_records"] = len(replay.records)
        self.stats["torn_tail"] = int(replay.torn_tail)
        return replay

    @staticmethod
    def _verify_line(
        line: bytes, expected_seq: int
    ) -> Tuple[Optional[JournalRecord], Optional[str]]:
        try:
            payload = json.loads(line)
        except ValueError:
            return None, "not valid JSON"
        if not isinstance(payload, dict):
            return None, "record is not an object"
        if payload.get("v") != _VERSION:
            return None, f"unknown journal version {payload.get('v')!r}"
        kind = payload.get("kind")
        seq = payload.get("seq")
        data = payload.get("data")
        claimed = payload.get("sha256")
        if kind not in KINDS or not isinstance(data, dict):
            return None, f"malformed record of kind {kind!r}"
        if not isinstance(seq, int) or seq != expected_seq:
            return None, f"sequence gap: expected {expected_seq}, got {seq!r}"
        actual = record_digest(seq, kind, data)
        if claimed != actual:
            return None, (
                f"sha256 mismatch: record claims {str(claimed)[:12]}..., "
                f"bytes hash to {actual[:12]}..."
            )
        return JournalRecord(seq=seq, kind=kind, data=data), None

    def _quarantine(self) -> str:
        target = f"{self.path}.corrupt"
        suffix = 0
        while os.path.exists(target):
            suffix += 1
            target = f"{self.path}.corrupt.{suffix}"
        try:
            os.replace(self.path, target)
        except OSError as exc:
            raise ReproError(
                f"cannot quarantine corrupt journal {self.path!r}: {exc}"
            ) from exc
        return target

    # -- appends --------------------------------------------------------------

    def append(self, kind: str, data: Dict[str, object]) -> int:
        """Durably append one record; returns its sequence number.

        The record is serialised to one line and written with a single
        ``write()`` + flush, then fsynced per policy -- so a crash leaves
        either the whole record or a torn tail that replay drops, never a
        half-record followed by later appends.
        """
        if kind not in KINDS:
            raise ReproError(f"unknown journal record kind {kind!r}")
        with self._lock:
            if self._closed:
                raise ReproError(f"journal {self.path!r} is closed")
            if self._handle is None:
                directory = os.path.dirname(os.path.abspath(self.path))
                os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "ab")
            seq = self._seq
            self._seq += 1
            payload = {
                "data": data,
                "kind": kind,
                "seq": seq,
                "sha256": record_digest(seq, kind, data),
                "v": _VERSION,
            }
            line = (_canonical(payload) + "\n").encode("utf-8")
            self._handle.write(line)
            self._handle.flush()
            self._maybe_fsync()
            self.stats["appends"] += 1
            self.stats["bytes_written"] += len(line)
        if self._chaos is not None:
            self._chaos.after_journal_append(self)
        return seq

    def _maybe_fsync(self) -> None:
        if self.fsync == "never" or self._handle is None:
            return
        now = time.monotonic()
        if (
            self.fsync == "interval"
            and self._last_fsync is not None
            and now - self._last_fsync < self.fsync_interval
        ):
            return
        os.fsync(self._handle.fileno())
        self._last_fsync = now
        self.stats["fsyncs"] += 1

    def tear_tail(self, drop_bytes: int = 9) -> None:
        """Chop ``drop_bytes`` off the end of the file (chaos hook).

        Simulates a torn write: the final record loses its tail (and its
        newline), exactly what a crash mid-``write`` leaves behind.  The
        in-memory handle is flushed first so the truncation hits the real
        end of the journal.
        """
        with self._lock:
            if self._handle is not None:
                self._handle.flush()
            try:
                size = os.path.getsize(self.path)
            except OSError:
                return
            if size <= 1:
                return
            keep = max(1, size - max(1, drop_bytes))
            with open(self.path, "r+b") as handle:
                handle.truncate(keep)
            if self._handle is not None:
                # Re-open so subsequent appends land after the torn tail
                # (the old handle's file position is past the truncation).
                self._handle.close()
                self._handle = open(self.path, "ab")

    # -- telemetry / lifecycle ------------------------------------------------

    def stats_snapshot(self) -> Dict[str, object]:
        """JSON-able journal telemetry for ``/metrics``."""
        with self._lock:
            snapshot: Dict[str, object] = dict(self.stats)
        snapshot["path"] = self.path
        snapshot["fsync"] = self.fsync
        try:
            snapshot["bytes"] = os.path.getsize(self.path)
        except OSError:
            snapshot["bytes"] = 0
        return snapshot

    def close(self) -> None:
        """Flush, fsync (unless policy is ``never``) and close; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._handle is not None:
                self._handle.flush()
                if self.fsync != "never":
                    os.fsync(self._handle.fileno())
                    self.stats["fsyncs"] += 1
                self._handle.close()
                self._handle = None

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close()
