"""Campaign service: an async batch job engine over :class:`CampaignPool`.

The production-shaped front half of the repro stack: clients submit
synthesis→BIST-campaign jobs over HTTP and stream the resulting
:class:`~repro.faults.coverage.CoverageReport`-bearing metrics records
back as they finish, while the service multiplexes the work across
sharded persistent worker pools with priority scheduling, bounded
queues, SHA-256 content dedupe and graceful drain.

Three layers, each usable on its own:

* :class:`~repro.service.jobs.JobEngine` -- the in-process engine
  (priority heaps, shard executors, admission control, dedupe).
* :class:`~repro.service.app.CampaignServer` -- the stdlib
  ``http.server`` REST front-end (``repro serve``).
* :class:`~repro.service.client.ServiceClient` -- the typed HTTP client
  (``repro submit``, ``repro sweep --service``), with transient-fault
  retries and batch reconnect/resume.
* :class:`~repro.service.journal.JobJournal` -- the write-ahead job
  journal (``repro serve --journal``) that makes the engine's state
  survive a ``kill -9``: replay restores completed results and the
  dedupe table, and requeues interrupted jobs.

Determinism contract: a job's metrics record is a pure function of its
subject and deterministic config (:func:`repro.suite.sweep.sweep_member`
is the single unit of work on both sides), so a sweep driven through the
service is bit-identical to the in-process path -- *including* a sweep
that survived a server crash and restart mid-batch.
"""

from .app import CampaignServer, serve
from .client import ServiceClient, ServiceError
from .jobs import AdhocMember, Job, JobEngine, job_payload_key
from .journal import JobJournal, JournalRecord, JournalReplay

__all__ = [
    "AdhocMember",
    "CampaignServer",
    "Job",
    "JobEngine",
    "JobJournal",
    "JournalRecord",
    "JournalReplay",
    "ServiceClient",
    "ServiceError",
    "job_payload_key",
    "serve",
]
