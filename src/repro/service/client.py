"""Typed HTTP client for the campaign service (stdlib ``http.client``).

:class:`ServiceClient` wraps the REST surface of :mod:`repro.service.app`
with plain-Python calls and structured errors, and adds the one piece of
protocol clients should not each reinvent: :meth:`run_batch`, which
submits a list of jobs in admission-control-sized slices (backing off on
429), then streams completions and returns the jobs *in submission
order* -- the property the service-driven sweep relies on to write a
``metrics.jsonl`` bit-identical to the in-process path.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import quote, urlsplit

from ..exceptions import AdmissionError, ReproError

__all__ = ["ServiceClient", "ServiceError"]


class ServiceError(ReproError):
    """An HTTP-level failure talking to the campaign service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One connection-per-request client for a running campaign service."""

    def __init__(self, url: str, timeout: float = 120.0) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ServiceError(f"campaign service wants http://, got {url!r}")
        if not parts.hostname:
            raise ServiceError(f"no host in service URL {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    # -- wire plumbing -------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        payload=None,
        ok=(200, 202),
    ) -> Tuple[int, object]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        conn = self._connection()
        try:
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"campaign service at {self.host}:{self.port} "
                    f"unreachable: {exc}"
                ) from exc
            try:
                decoded = json.loads(raw) if raw else None
            except ValueError as exc:
                raise ServiceError(
                    f"non-JSON response ({response.status}): {raw[:200]!r}",
                    status=response.status,
                ) from exc
            if response.status == 429:
                message = "admission control refused the submission"
                if isinstance(decoded, Mapping) and decoded.get("error"):
                    message = str(decoded["error"])
                error = AdmissionError(message)
                error.accepted = (
                    decoded.get("accepted", [])
                    if isinstance(decoded, Mapping)
                    else []
                )
                raise error
            if response.status not in ok:
                message = f"HTTP {response.status} on {method} {path}"
                if isinstance(decoded, Mapping) and decoded.get("error"):
                    message = f"{message}: {decoded['error']}"
                raise ServiceError(message, status=response.status)
            return response.status, decoded
        finally:
            conn.close()

    # -- REST surface --------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")[1]

    def submit(self, job: Mapping) -> Dict[str, object]:
        """Submit one job; returns its description (with ``deduped``)."""
        return self._request("POST", "/jobs", payload=dict(job))[1]

    def submit_batch(self, jobs: Sequence[Mapping]) -> List[Dict[str, object]]:
        """Submit several jobs in one request (all-admitted-or-429)."""
        return self._request("POST", "/jobs", payload=[dict(j) for j in jobs])[1]

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")[1]["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{quote(job_id)}")[1]

    def cancel(self, job_id: str) -> str:
        """Cancel a queued job; returns the job's resulting state."""
        return self._request("DELETE", f"/jobs/{quote(job_id)}")[1]["state"]

    def shutdown(self) -> Dict[str, object]:
        """Ask the service to drain and stop."""
        return self._request("POST", "/shutdown", payload={})[1]

    def stream(
        self, job_ids: Sequence[str], timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Yield full job descriptions as each finishes (completion order).

        One long-lived chunked-NDJSON response; ``http.client`` decodes
        the chunking transparently, so this just reads lines.  An
        ``{"error": ...}`` line from the server becomes a
        :class:`ServiceError`.
        """
        if not job_ids:
            return
        path = "/stream?jobs=" + quote(",".join(job_ids))
        if timeout is not None:
            path += f"&timeout={timeout}"
        conn = self._connection()
        try:
            try:
                conn.request("GET", path)
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"campaign service at {self.host}:{self.port} "
                    f"unreachable: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                try:
                    decoded = json.loads(raw) if raw else {}
                except ValueError:
                    decoded = {}
                raise ServiceError(
                    f"HTTP {response.status} on GET /stream"
                    + (f": {decoded['error']}" if decoded.get("error") else ""),
                    status=response.status,
                )
            buffer = b""
            while True:
                block = response.read1(65536)
                if not block:
                    break
                buffer += block
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    decoded = json.loads(line)
                    if "error" in decoded and "job" not in decoded:
                        raise ServiceError(str(decoded["error"]))
                    yield decoded
        finally:
            conn.close()

    # -- batch protocol ------------------------------------------------------

    def run_batch(
        self,
        jobs: Sequence[Mapping],
        batch_size: int = 16,
        max_wait: float = 30.0,
        progress=None,
    ) -> List[Dict[str, object]]:
        """Submit jobs respecting admission control; return them finished,
        in submission order.

        Jobs go up in ``batch_size`` slices; a 429 keeps whatever the
        service admitted and retries the rest with linear backoff (bounded
        by ``max_wait`` per slice -- admission pressure clears as campaigns
        finish, so waiting is productive).  Completions stream back as
        they happen (``progress(done, total, job)`` if given); the return
        value is reassembled in submission order so callers get
        deterministic output regardless of scheduling.
        """
        submitted: List[Dict[str, object]] = []
        pending = [dict(job) for job in jobs]
        while pending:
            slice_jobs, pending = pending[:batch_size], pending[batch_size:]
            while slice_jobs:
                try:
                    submitted.extend(self.submit_batch(slice_jobs))
                    break
                except AdmissionError as exc:
                    admitted = getattr(exc, "accepted", [])
                    submitted.extend(admitted)
                    slice_jobs = slice_jobs[len(admitted) :]
                    deadline = time.monotonic() + max_wait
                    delay = 0.1
                    while True:
                        time.sleep(delay)
                        if time.monotonic() >= deadline:
                            raise ServiceError(
                                f"admission control refused "
                                f"{len(slice_jobs)} jobs for {max_wait}s: "
                                f"{exc}",
                                status=429,
                            ) from exc
                        delay = min(delay * 1.5, 2.0)
                        break
        order = [entry["job"] for entry in submitted]
        finished: Dict[str, Dict[str, object]] = {}
        # Dedupe hits alias several submissions onto one job id; stream
        # each id once and fan its completion back out.
        done = 0
        for job in self.stream(list(dict.fromkeys(order))):
            finished[job["job"]] = job
            done += 1
            if progress is not None:
                progress(done, len(set(order)), job)
        missing = [job_id for job_id in order if job_id not in finished]
        if missing:
            raise ServiceError(
                f"stream ended without {len(missing)} jobs: {missing[:5]}"
            )
        return [finished[job_id] for job_id in order]
