"""Typed HTTP client for the campaign service (stdlib ``http.client``).

:class:`ServiceClient` wraps the REST surface of :mod:`repro.service.app`
with plain-Python calls and structured errors, and adds the protocol
clients should not each reinvent:

* **Transient-fault retries.**  Every request retries connection-level
  failures (refused, reset, EOF, timeout) with capped exponential
  backoff.  Retrying ``POST /jobs`` is safe *because* the engine dedupes
  on content identity: a resubmission whose first attempt actually landed
  returns the same job instead of a duplicate campaign.
* **Batch + resume** (:meth:`run_batch`): jobs go up in
  admission-control-sized slices (backing off on 429), completions
  stream back, and a dropped stream -- including the server being killed
  and restarted mid-batch -- falls back to polling with capped backoff,
  re-attaching to restored jobs and resubmitting any the server no
  longer knows.  The return value is reassembled *in submission order*,
  the property the service-driven sweep relies on to write a
  ``metrics.jsonl`` bit-identical to the in-process path.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple
from urllib.parse import quote, urlsplit

from ..exceptions import AdmissionError, ReproError

__all__ = ["ServiceClient", "ServiceError"]

#: terminal job states, mirrored from :mod:`repro.service.jobs` (kept
#: textual here: the client must not import engine internals).
_TERMINAL = ("done", "failed", "cancelled")

#: module-level sleep hook so tests can run the backoff paths instantly.
_sleep = time.sleep

#: connection-level failures worth retrying (the server may just be
#: restarting); HTTP status codes other than 429 are never retried.
_TRANSIENT = (OSError, http.client.HTTPException)


class ServiceError(ReproError):
    """An HTTP-level failure talking to the campaign service."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class ServiceClient:
    """One connection-per-request client for a running campaign service.

    ``retries`` bounds per-request transient-failure retries (``0``
    disables them); ``backoff``/``backoff_cap`` shape every backoff loop
    in the client (request retries, 429 waits, reconnect polling).
    ``stats`` counts what the resilience machinery actually did:
    ``retries`` (re-sent requests), ``reconnects`` (stream outages
    survived), ``resubmitted`` (jobs re-posted after the server lost
    them).
    """

    def __init__(
        self,
        url: str,
        timeout: float = 120.0,
        retries: int = 4,
        backoff: float = 0.1,
        backoff_cap: float = 2.0,
    ) -> None:
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ServiceError(f"campaign service wants http://, got {url!r}")
        if not parts.hostname:
            raise ServiceError(f"no host in service URL {url!r}")
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if backoff <= 0 or backoff_cap < backoff:
            raise ServiceError(
                f"need 0 < backoff <= backoff_cap, got "
                f"{backoff}/{backoff_cap}"
            )
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout
        self.retries = retries
        self.backoff = backoff
        self.backoff_cap = backoff_cap
        self.stats: Dict[str, int] = {
            "retries": 0,
            "reconnects": 0,
            "resubmitted": 0,
        }

    # -- wire plumbing -------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self,
        method: str,
        path: str,
        payload=None,
        ok=(200, 202),
    ) -> Tuple[int, object]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        attempt = 0
        delay = self.backoff
        while True:
            conn = self._connection()
            try:
                try:
                    conn.request(method, path, body=body, headers=headers)
                    response = conn.getresponse()
                    raw = response.read()
                except _TRANSIENT as exc:
                    # Refused/reset/EOF/timeout: the server may be mid-
                    # restart.  Re-sending is safe for every route --
                    # GETs are pure, cancel and shutdown are idempotent,
                    # and POST /jobs dedupes on content identity.
                    if attempt >= self.retries:
                        raise ServiceError(
                            f"campaign service at {self.host}:{self.port} "
                            f"unreachable after {attempt + 1} attempts: {exc}"
                        ) from exc
                    attempt += 1
                    self.stats["retries"] += 1
                    _sleep(delay)
                    delay = min(delay * 2.0, self.backoff_cap)
                    continue
                try:
                    decoded = json.loads(raw) if raw else None
                except ValueError as exc:
                    raise ServiceError(
                        f"non-JSON response ({response.status}): {raw[:200]!r}",
                        status=response.status,
                    ) from exc
                if response.status == 429:
                    message = "admission control refused the submission"
                    if isinstance(decoded, Mapping) and decoded.get("error"):
                        message = str(decoded["error"])
                    error = AdmissionError(message)
                    error.accepted = (
                        decoded.get("accepted", [])
                        if isinstance(decoded, Mapping)
                        else []
                    )
                    raise error
                if response.status not in ok:
                    message = f"HTTP {response.status} on {method} {path}"
                    if isinstance(decoded, Mapping) and decoded.get("error"):
                        message = f"{message}: {decoded['error']}"
                    raise ServiceError(message, status=response.status)
                return response.status, decoded
            finally:
                conn.close()

    # -- REST surface --------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/healthz")[1]

    def metrics(self) -> Dict[str, object]:
        return self._request("GET", "/metrics")[1]

    def submit(self, job: Mapping) -> Dict[str, object]:
        """Submit one job; returns its description (with ``deduped``)."""
        return self._request("POST", "/jobs", payload=dict(job))[1]

    def submit_batch(self, jobs: Sequence[Mapping]) -> List[Dict[str, object]]:
        """Submit several jobs in one request (all-admitted-or-429)."""
        return self._request("POST", "/jobs", payload=[dict(j) for j in jobs])[1]

    def jobs(self) -> List[Dict[str, object]]:
        return self._request("GET", "/jobs")[1]["jobs"]

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{quote(job_id)}")[1]

    def cancel(self, job_id: str) -> str:
        """Cancel a queued job; returns the job's resulting state."""
        return self._request("DELETE", f"/jobs/{quote(job_id)}")[1]["state"]

    def shutdown(self) -> Dict[str, object]:
        """Ask the service to drain and stop."""
        return self._request("POST", "/shutdown", payload={})[1]

    def stream(
        self, job_ids: Sequence[str], timeout: Optional[float] = None
    ) -> Iterator[Dict[str, object]]:
        """Yield full job descriptions as each finishes (completion order).

        One long-lived chunked-NDJSON response; ``http.client`` decodes
        the chunking transparently, so this just reads lines.  An
        ``{"error": ...}`` line from the server becomes a
        :class:`ServiceError`.
        """
        if not job_ids:
            return
        path = "/stream?jobs=" + quote(",".join(job_ids))
        if timeout is not None:
            path += f"&timeout={timeout}"
        conn = self._connection()
        try:
            try:
                conn.request("GET", path)
                response = conn.getresponse()
            except (OSError, http.client.HTTPException) as exc:
                raise ServiceError(
                    f"campaign service at {self.host}:{self.port} "
                    f"unreachable: {exc}"
                ) from exc
            if response.status != 200:
                raw = response.read()
                try:
                    decoded = json.loads(raw) if raw else {}
                except ValueError:
                    decoded = {}
                raise ServiceError(
                    f"HTTP {response.status} on GET /stream"
                    + (f": {decoded['error']}" if decoded.get("error") else ""),
                    status=response.status,
                )
            buffer = b""
            while True:
                block = response.read1(65536)
                if not block:
                    break
                buffer += block
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    if not line.strip():
                        continue
                    decoded = json.loads(line)
                    if "error" in decoded and "job" not in decoded:
                        raise ServiceError(str(decoded["error"]))
                    yield decoded
        finally:
            conn.close()

    # -- batch protocol ------------------------------------------------------

    def _submit_all(
        self,
        payloads: List[Dict[str, object]],
        batch_size: int,
        max_wait: float,
    ) -> List[Dict[str, object]]:
        """Submit every payload in admission-control-sized slices.

        A 429 keeps whatever the service admitted and retries the rest
        with capped *exponential* backoff; partial admission resets the
        ``max_wait`` clock (pressure is clearing, waiting is productive),
        a full refusal does not, so a stuck queue fails within
        ``max_wait`` instead of spinning.
        """
        submitted: List[Dict[str, object]] = []
        pending = list(payloads)
        while pending:
            slice_jobs, pending = pending[:batch_size], pending[batch_size:]
            deadline = time.monotonic() + max_wait
            delay = self.backoff
            while slice_jobs:
                try:
                    submitted.extend(self.submit_batch(slice_jobs))
                    break
                except AdmissionError as exc:
                    admitted = getattr(exc, "accepted", [])
                    if admitted:
                        submitted.extend(admitted)
                        slice_jobs = slice_jobs[len(admitted) :]
                        deadline = time.monotonic() + max_wait
                        delay = self.backoff
                    if time.monotonic() >= deadline:
                        raise ServiceError(
                            f"admission control refused "
                            f"{len(slice_jobs)} jobs for {max_wait}s: "
                            f"{exc}",
                            status=429,
                        ) from exc
                    _sleep(delay)
                    delay = min(delay * 2.0, self.backoff_cap)
        return submitted

    def _poll_remaining(
        self,
        order: List[str],
        payloads: List[Dict[str, object]],
        finished: Dict[str, Dict[str, object]],
        progress,
    ) -> List[str]:
        """One polling pass over unfinished jobs (the stream's fallback).

        Harvests jobs that reached a terminal state while the stream was
        down, and resubmits any id the server no longer knows (a restart
        without a journal, or retention eviction) -- content dedupe makes
        the resubmission *the same job*, so nothing runs twice.  Returns
        the submission-order id list, rewritten where ids were replaced.
        """
        for job_id in list(dict.fromkeys(order)):
            if job_id in finished:
                continue
            try:
                job = self.job(job_id)
            except ServiceError as exc:
                if exc.status != 404:
                    raise
                try:
                    for index, known in enumerate(order):
                        if known == job_id:
                            described = self.submit(payloads[index])
                            order[index] = described["job"]
                            self.stats["resubmitted"] += 1
                except AdmissionError:
                    pass  # queue full; a later pass resubmits the rest
                continue
            if job.get("state") in _TERMINAL:
                finished[job_id] = job
                if progress is not None:
                    progress(
                        len(finished), len(dict.fromkeys(order)), job
                    )
        return order

    def run_batch(
        self,
        jobs: Sequence[Mapping],
        batch_size: int = 16,
        max_wait: float = 30.0,
        progress=None,
        reconnect_wait: float = 60.0,
    ) -> List[Dict[str, object]]:
        """Submit jobs respecting admission control; return them finished,
        in submission order.

        Jobs go up in ``batch_size`` slices (see :meth:`_submit_all`);
        completions stream back as they happen (``progress(done, total,
        job)`` if given).  A dropped stream -- the server crashed, was
        killed, or stalled past the timeout -- switches to polling with
        capped exponential backoff and keeps trying for
        ``reconnect_wait`` seconds of *no progress* (any completed job
        resets the clock): a server restarted on the same journal hands
        back restored results and requeued jobs as if nothing happened,
        and one restarted without a journal gets the lost jobs
        resubmitted.  The return value is reassembled in submission
        order, so callers get deterministic output regardless of
        scheduling, crashes or retries.
        """
        payloads = [dict(job) for job in jobs]
        submitted = self._submit_all(payloads, batch_size, max_wait)
        order = [entry["job"] for entry in submitted]
        finished: Dict[str, Dict[str, object]] = {}
        outage_deadline: Optional[float] = None
        delay = self.backoff
        while True:
            # Dedupe hits alias several submissions onto one job id;
            # stream each id once and fan its completion back out.
            remaining = [
                job_id
                for job_id in dict.fromkeys(order)
                if job_id not in finished
            ]
            if not remaining:
                break
            try:
                for job in self.stream(remaining):
                    if job.get("state") not in _TERMINAL:
                        continue
                    finished[job["job"]] = job
                    outage_deadline = None
                    delay = self.backoff
                    if progress is not None:
                        progress(
                            len(finished), len(dict.fromkeys(order)), job
                        )
                leftover = [
                    job_id
                    for job_id in dict.fromkeys(order)
                    if job_id not in finished
                ]
                if leftover:
                    raise ServiceError(
                        f"stream ended without {len(leftover)} jobs: "
                        f"{leftover[:5]}"
                    )
            except (ServiceError, ValueError, *_TRANSIENT) as exc:
                # ValueError covers a torn NDJSON line from a killed
                # server; _TRANSIENT covers the connection dying mid-
                # stream (those reads sit outside _request's retries).
                now = time.monotonic()
                if outage_deadline is None:
                    outage_deadline = now + reconnect_wait
                    self.stats["reconnects"] += 1
                elif now >= outage_deadline:
                    raise ServiceError(
                        f"campaign service did not recover within "
                        f"{reconnect_wait}s: {exc}"
                    ) from exc
                _sleep(delay)
                delay = min(delay * 2.0, self.backoff_cap)
                before = len(finished)
                try:
                    order = self._poll_remaining(
                        order, payloads, finished, progress
                    )
                except (ServiceError, *_TRANSIENT):
                    continue  # still down; next lap re-checks the deadline
                if len(finished) > before:
                    outage_deadline = None
                    delay = self.backoff
        return [finished[job_id] for job_id in order]
