"""The paper's depth-first OSTR search (Section 3) with Lemma-1 pruning.

The search tree's nodes are subsets ``N`` of the deduplicated basis
``M-basis = { m(rho_{s,t}) | s,t in S }``; an edge adds one basis element of
larger index, so the tree enumerates each subset exactly once and has
``|V| = 2^|M-basis|`` nodes.  For each node the relation
``pi = (union N)^t`` (the lattice join) is formed and up to two candidate
solutions are evaluated:

* the *M-side* ``(M(pi), pi)`` -- usable when the Mm-pair is symmetric
  (equivalently ``m(pi) ⊆ M(pi)``) and ``M(pi) ∩ pi ⊆ epsilon``;
* otherwise the *m-side* ``(m(pi), pi)`` -- which by Theorem 2 has the
  minimal intersection of its family -- when ``m(pi) ∩ pi ⊆ epsilon``.

**Lemma 1** prunes: ``m(pi) ∩ pi ⊄ epsilon`` is inherited by every superset
node, so the whole subtree can be discarded.

Two faithful-but-safe engineering additions, both switchable for the
accounting ablations:

* ``skip_redundant``: a child whose basis element is already below the
  current join contributes nothing new; its subtree is a duplicate of
  sibling subtrees and is skipped (node counts report how many).
* memoisation of node evaluations keyed by the join (different subsets can
  produce the same relation).

Two engines traverse the same tree.  The default is the bitset-native
engine: partitions live as block bitmasks (:class:`~repro.partitions.
kernel.BitsetKernel`), ``m`` is maintained *incrementally* along DFS edges
through the join-homomorphism ``m(pi v rho) = m(pi) v m(rho)`` (m is the
smallest half of a pair algebra, hence a complete join-morphism), and
``M`` is only computed on nodes that survive the Lemma-1 test -- if
``m(pi) ∩ pi ⊄ epsilon`` then no candidate can exist at the node, because
``M(pi) ∩ pi ⊆ epsilon`` together with ``m(pi) ⊆ M(pi)`` would force the
m-side condition.  ``reference=True`` (or the legacy ``fast=False``) runs
the seed's label-tuple interpreters operator by operator instead; both
produce identical solutions and identical search statistics (asserted by
the equivalence tests and the Table-1 golden-stats file), only the wall
clock differs.

An optional ``policy="extended"`` additionally coarsens the m-side first
factor greedily towards ``M(pi)`` while the intersection condition holds;
the paper's procedure does not do this, and the ablation benchmark uses the
flag to probe the paper's exactness claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import SearchError
from ..fsm import MealyMachine
from ..fsm.equivalence import equivalence_labels
from ..partitions import Partition
from ..partitions import kernel
from ..partitions.mm import m_basis_labels
from .problem import OstrSolution, better, trivial_solution
from .theorem1 import PipelineRealization, realize

Labels = Tuple[int, ...]
Masks = Tuple[int, ...]


@dataclass
class SearchStats:
    """Search-effort accounting (the substance of Table 2)."""

    basis_size: int = 0
    tree_size: int = 0
    investigated: int = 0
    pruned_subtrees: int = 0
    skipped_redundant: int = 0
    unique_joins: int = 0
    candidates_evaluated: int = 0
    improvements: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    node_limit_hit: bool = False

    @property
    def exact(self) -> bool:
        """Did the search cover the whole (pruned) tree?"""
        return not (self.timed_out or self.node_limit_hit)

    @property
    def tree_size_log2(self) -> int:
        return self.basis_size


@dataclass
class OstrResult:
    """Outcome of an OSTR search on one machine."""

    machine: MealyMachine
    solution: OstrSolution
    stats: SearchStats
    policy: str

    @property
    def exact(self) -> bool:
        return self.stats.exact

    def realization(self, name: str = None) -> PipelineRealization:
        """Instantiate (and verify) the Theorem-1 realization of the solution."""
        return realize(
            self.machine, self.solution.pi, self.solution.theta, name=name
        )

    def summary(self) -> str:
        sol = self.solution
        flag = "" if self.exact else " *"
        return (
            f"{self.machine.name}: |S|={self.machine.n_states} -> "
            f"|S1|={sol.k1}, |S2|={sol.k2}, flipflops={sol.flipflops}{flag} "
            f"(investigated {self.stats.investigated} of 2^"
            f"{self.stats.basis_size} nodes)"
        )


_BASIS_ORDERS = ("sorted", "coarse_first", "fine_first")
_POLICIES = ("paper", "extended")


def search_ostr(
    machine: MealyMachine,
    prune: bool = True,
    skip_redundant: bool = True,
    node_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    policy: str = "paper",
    basis_order: str = "sorted",
    fast: bool = True,
    reference: bool = False,
) -> OstrResult:
    """Solve OSTR for ``machine`` with the paper's depth-first procedure.

    Always returns a valid solution: the trivial doubling solution is the
    incumbent before the search starts, exactly as the paper observes that
    ``(identity, identity)`` always solves OSTR.  When ``node_limit`` or
    ``time_limit`` stop the search early, the best solution so far is
    returned and flagged (``result.exact == False``) -- this mirrors the
    ``tbk``/timeout row of Table 1.

    The default engine is bitset-native (see the module docstring): block
    bitmasks from :func:`~repro.partitions.kernel.bitset_kernel`, ``m``
    carried incrementally along DFS edges, ``M`` only on unpruned nodes,
    and memo caches keyed by the canonical mask tuples for both node
    evaluations and the ``join(pi, basis[i])`` DFS edges.  Pass
    ``reference=True`` (or the legacy ``fast=False``) for the seed's
    label-tuple operator-by-operator oracle; solutions and every search
    statistic are identical across the engines, only the wall clock
    differs.
    """
    if policy not in _POLICIES:
        raise SearchError(f"unknown policy {policy!r}; choose from {_POLICIES}")
    if basis_order not in _BASIS_ORDERS:
        raise SearchError(
            f"unknown basis order {basis_order!r}; choose from {_BASIS_ORDERS}"
        )
    if node_limit is not None and node_limit < 1:
        raise SearchError("node_limit must be positive")

    succ = machine.succ_table
    states = machine.states
    epsilon = equivalence_labels(machine)
    basis = m_basis_labels(succ)
    if basis_order == "coarse_first":
        basis.sort(key=kernel.num_blocks)
    elif basis_order == "fine_first":
        basis.sort(key=kernel.num_blocks, reverse=True)
    n_basis = len(basis)

    stats = SearchStats(basis_size=n_basis, tree_size=2 ** n_basis)
    best = trivial_solution(states)

    start_time = time.perf_counter()
    deadline = None if time_limit is None else start_time + time_limit
    if reference or not fast:
        best = _run_reference(
            machine, succ, states, epsilon, basis, stats, best,
            prune, skip_redundant, node_limit, deadline, policy,
        )
    else:
        best = _run_bitset(
            machine, succ, states, epsilon, basis, stats, best,
            prune, skip_redundant, node_limit, deadline, policy,
        )
    stats.elapsed_seconds = time.perf_counter() - start_time
    return OstrResult(machine=machine, solution=best, stats=stats, policy=policy)


def _run_reference(
    machine, succ, states, epsilon, basis, stats, best,
    prune, skip_redundant, node_limit, deadline, policy,
):
    """The seed's label-tuple DFS, kept verbatim as the equivalence oracle."""
    n = machine.n_states
    n_basis = len(basis)
    refines = kernel.refines
    m_of = lambda labels: kernel.m_operator(succ, labels)  # noqa: E731
    big_m_of = lambda labels: kernel.big_m_operator(succ, labels)  # noqa: E731
    meet_refines = lambda a, b, eps: kernel.refines(  # noqa: E731
        kernel.meet(a, b), eps
    )
    join_of = kernel.join

    # Memo table: joins repeat across subsets, and m/M are pure in the join.
    evaluation_cache: Dict[Labels, Tuple[List[Tuple[Labels, Labels]], bool]] = {}

    def evaluate(labels: Labels) -> Tuple[List[Tuple[Labels, Labels]], bool]:
        """Candidates at this join and whether Lemma 1 prunes the subtree."""
        cached = evaluation_cache.get(labels)
        if cached is not None:
            return cached
        mu = m_of(labels)
        big = big_m_of(labels)
        m_side_ok = meet_refines(mu, labels, epsilon)
        prunable = not m_side_ok
        candidates: List[Tuple[Labels, Labels]] = []
        if refines(mu, big):  # symmetry of the Mm-pair
            if meet_refines(big, labels, epsilon):
                candidates.append((big, labels))
            elif m_side_ok:
                candidates.append((mu, labels))
            if m_side_ok and policy == "extended":
                candidates.extend(
                    _extended_candidates(succ, mu, big, labels, epsilon)
                )
        outcome = (candidates, prunable)
        evaluation_cache[labels] = outcome
        return outcome

    root = kernel.identity(n)
    stack: List[Tuple[Labels, int]] = [(root, 0)]

    while stack:
        if node_limit is not None and stats.investigated >= node_limit:
            stats.node_limit_hit = True
            break
        if deadline is not None and stats.investigated % 128 == 0:
            if time.perf_counter() > deadline:
                stats.timed_out = True
                break
        labels, next_index = stack.pop()
        stats.investigated += 1

        candidates, prunable = evaluate(labels)
        for pi_labels, theta_labels in candidates:
            stats.candidates_evaluated += 1
            candidate = OstrSolution(
                pi=Partition(states, pi_labels),
                theta=Partition(states, theta_labels),
            )
            if better(candidate, best):
                best = candidate
                stats.improvements += 1

        if prune and prunable:
            stats.pruned_subtrees += 1
            continue

        for child_index in range(n_basis - 1, next_index - 1, -1):
            child = join_of(labels, basis[child_index])
            if skip_redundant and child == labels:
                stats.skipped_redundant += 1
                continue
            stack.append((child, child_index + 1))

    stats.unique_joins = len(evaluation_cache)
    return best


def _run_bitset(
    machine, succ, states, epsilon, basis, stats, best,
    prune, skip_redundant, node_limit, deadline, policy,
):
    """The bitset-native DFS: the production engine.

    Same tree, same statistics as :func:`_run_reference`; the partition
    algebra runs on block bitmasks in the *sparse* form (nontrivial
    blocks only, singletons implied -- see the kernel module) with three
    structural savings:

    * ``m(pi)`` is carried down DFS edges as ``join(m(parent),
      m(basis[i]))`` -- m is a join-morphism, so no node recomputes the
      full successor-image closure;
    * ``M(pi)`` is only computed on nodes that pass the Lemma-1 test
      (``m(pi) ∩ pi ⊆ epsilon``): for a failing node ``meet(M(pi), pi) ⊆
      epsilon`` would imply the m-side condition via ``m(pi) ⊆ M(pi)``,
      so no candidate exists and the subtree is pruned without touching
      ``M`` -- on the Table-1 machines ~99% of investigated nodes prune;
    * a fully redundant DFS edge (``basis[i] <= pi``) returns the parent
      object itself from the join, so the ``skip_redundant`` test is an
      identity check instead of a join-and-compare.
    """
    kern = kernel.bitset_kernel(succ)
    n_basis = len(basis)
    basis_masks = [kern.from_labels(b) for b in basis]
    basis_m = [kern.m(bm) for bm in basis_masks]
    # The basis in sparse form: nontrivial blocks double as the join
    # constraint tuples for the DFS edges.
    basis_nt = [kern.nontrivial(masks) for masks in basis_masks]
    basis_m_nt = [kern.nontrivial(masks) for masks in basis_m]
    eps_owner = kern.arrays(kern.from_labels(epsilon))[1]
    from_sparse = kern.from_sparse
    to_labels = kern.to_labels
    sparse_owner = kern.sparse_owner
    join_sparse = kern.join_sparse
    extended = policy == "extended"

    # Memo tables: node evaluations are keyed by the sparse mask tuple
    # (one small-tuple hash per investigated node); each entry carries the
    # node's m image (so expansion gets it for free on cache hits) and a
    # dense node id, which keys the join(pi, basis[i]) DFS-edge memo as a
    # single small int -- far cheaper to hash than the mask tuples.
    evaluation_cache: Dict[Masks, Tuple[list, bool, Masks, int, Masks]] = {}
    join_cache: Dict[int, Masks] = {}
    eval_get = evaluation_cache.get
    join_get = join_cache.get

    investigated = 0
    candidates_evaluated = 0
    improvements = 0
    pruned_subtrees = 0
    skipped_redundant = 0
    limit = float("inf") if node_limit is None else node_limit

    root: Masks = ()  # sparse identity: no nontrivial blocks
    stack: List[tuple] = [(root, None, 0, 0)]
    push = stack.append
    pop = stack.pop

    while stack:
        if investigated >= limit:
            stats.node_limit_hit = True
            break
        if deadline is not None and not investigated & 127:
            if time.perf_counter() > deadline:
                stats.timed_out = True
                break
        masks, parent_mu, via_index, next_index = pop()
        investigated += 1

        entry = eval_get(masks)
        if entry is None:
            if parent_mu is None:  # root: m(identity) computed outright
                mu = tuple(
                    m for m in kern.m(from_sparse(masks)) if m & (m - 1)
                )
            else:  # incremental: m(pi v basis[i]) == m(pi) v m(basis[i])
                mu = join_sparse(parent_mu, basis_m_nt[via_index])
            # Lemma-1 test m(pi) ∩ pi ⊆ epsilon: in sparse form every
            # block is nontrivial, and only multi-element intersections
            # can escape an epsilon block.
            m_side_ok = True
            for am in mu:
                for bm in masks:
                    x = am & bm
                    if x & (x - 1):
                        if x & ~eps_owner[(x & -x).bit_length() - 1]:
                            m_side_ok = False
                            break
                if not m_side_ok:
                    break
            if not m_side_ok:
                # No candidate can exist here (see the docstring): prune
                # without computing M at all.
                entry = ((), True, mu, len(evaluation_cache), masks)
            else:
                full = from_sparse(masks)
                mu_full = from_sparse(mu)
                big = kern.big_m(full)
                candidates: List[Tuple[Labels, Labels]] = []
                if kern.refines(mu_full, big):  # symmetry of the Mm-pair
                    labels = to_labels(full)
                    if kern.meet_refines_owner(big, full, eps_owner):
                        candidates.append((to_labels(big), labels))
                    else:  # m side is known to hold here
                        candidates.append((to_labels(mu_full), labels))
                    if extended:
                        candidates.extend(
                            _extended_candidates(
                                succ, to_labels(mu_full), to_labels(big),
                                labels, epsilon,
                            )
                        )
                entry = (candidates, False, mu, len(evaluation_cache), masks)
            evaluation_cache[masks] = entry

        # The interned masks object replaces the popped one: value-equal
        # joins reached over different DFS paths are distinct tuples, and
        # the ``child is masks`` redundancy test below needs the one
        # object the join memo was built against.
        candidates, prunable, mu, node_id, masks = entry
        if candidates:
            for pi_labels, theta_labels in candidates:
                candidates_evaluated += 1
                candidate = OstrSolution(
                    pi=Partition(states, pi_labels),
                    theta=Partition(states, theta_labels),
                )
                if better(candidate, best):
                    best = candidate
                    improvements += 1

        if prune and prunable:
            pruned_subtrees += 1
            continue

        if next_index < n_basis:
            owner = sparse_owner(masks)
            edge_base = node_id * n_basis
            for child_index in range(n_basis - 1, next_index - 1, -1):
                key = edge_base + child_index
                child = join_get(key)
                if child is None:
                    child = join_sparse(masks, basis_nt[child_index], owner)
                    join_cache[key] = child
                if child is masks:  # basis[i] <= pi: redundant edge
                    if skip_redundant:
                        skipped_redundant += 1
                        continue
                push((child, mu, child_index, child_index + 1))

    stats.investigated += investigated
    stats.candidates_evaluated += candidates_evaluated
    stats.improvements += improvements
    stats.pruned_subtrees += pruned_subtrees
    stats.skipped_redundant += skipped_redundant
    stats.unique_joins = len(evaluation_cache)
    return best


def _color_coarsen(
    fine: Labels, bound: Labels, other: Labels, epsilon: Labels
) -> Labels:
    """Group blocks of ``fine`` within ``bound``-blocks, avoiding conflicts.

    A merged block must never contain two states that share an ``other``
    block without being ``epsilon``-equivalent (the meet condition of
    Theorem 1).  Any grouping between ``fine`` and ``bound`` keeps the
    symmetric-pair property, so fewer groups means a cheaper factor.
    Greedy first-fit over blocks ordered largest-first (Welsh-Powell
    style); deterministic, so runs are reproducible.
    """
    n = len(fine)
    members: Dict[int, List[int]] = {}
    for state in range(n):
        members.setdefault(fine[state], []).append(state)
    order = sorted(
        members, key=lambda block: (-len(members[block]), members[block][0])
    )

    def conflicts(states_a: List[int], states_b: List[int]) -> bool:
        for a in states_a:
            for b in states_b:
                if other[a] == other[b] and epsilon[a] != epsilon[b]:
                    return True
        return False

    groups: List[List[int]] = []  # states per group
    group_bound: List[int] = []
    assignment: Dict[int, int] = {}
    for block in order:
        states = members[block]
        placed = False
        for index, group in enumerate(groups):
            if group_bound[index] != bound[states[0]]:
                continue
            if not conflicts(states, group):
                group.extend(states)
                assignment[block] = index
                placed = True
                break
        if not placed:
            assignment[block] = len(groups)
            groups.append(list(states))
            group_bound.append(bound[states[0]])
    return kernel.canonical([assignment[fine[state]] for state in range(n)])


def _extended_candidates(
    succ, mu: Labels, big: Labels, pihat: Labels, epsilon: Labels
) -> List[Tuple[Labels, Labels]]:
    """Alternating coarsening of both factors (beyond the paper's policy).

    The paper evaluates only ``(M(pi), pi)`` and ``(m(pi), pi)`` per node,
    which provably misses optima whose factors lie strictly between those
    bounds (see EXPERIMENTS.md).  Starting from the always-valid m-side
    pair, alternately re-colour one side against the other until a
    fixpoint; every intermediate pair is a valid solution candidate.
    """
    candidates: List[Tuple[Labels, Labels]] = []
    first = _color_coarsen(mu, big, pihat, epsilon)
    second = pihat
    for _ in range(4):
        if not kernel.refines(kernel.meet(first, second), epsilon):
            break  # defensive; coloring should preserve the invariant
        candidates.append((first, second))
        second_low = kernel.m_operator(succ, first)
        second_high = kernel.big_m_operator(succ, first)
        if not kernel.refines(second_low, second_high):
            break
        new_second = _color_coarsen(second_low, second_high, first, epsilon)
        first_low = kernel.m_operator(succ, new_second)
        first_high = kernel.big_m_operator(succ, new_second)
        if not kernel.refines(first_low, first_high):
            break
        new_first = _color_coarsen(first_low, first_high, new_second, epsilon)
        if (new_first, new_second) == (first, second):
            break
        first, second = new_first, new_second
    # Belt and braces: the constructions above guarantee validity, but a
    # candidate that slipped through a bug here must never become the
    # reported optimum, so re-verify each pair.
    return [
        (a, b)
        for a, b in candidates
        if kernel.is_symmetric_pair(succ, a, b)
        and kernel.refines(kernel.meet(a, b), epsilon)
    ]
