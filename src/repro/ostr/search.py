"""The paper's depth-first OSTR search (Section 3) with Lemma-1 pruning.

The search tree's nodes are subsets ``N`` of the deduplicated basis
``M-basis = { m(rho_{s,t}) | s,t in S }``; an edge adds one basis element of
larger index, so the tree enumerates each subset exactly once and has
``|V| = 2^|M-basis|`` nodes.  For each node the relation
``pi = (union N)^t`` (the lattice join) is formed and up to two candidate
solutions are evaluated:

* the *M-side* ``(M(pi), pi)`` -- usable when the Mm-pair is symmetric
  (equivalently ``m(pi) ⊆ M(pi)``) and ``M(pi) ∩ pi ⊆ epsilon``;
* otherwise the *m-side* ``(m(pi), pi)`` -- which by Theorem 2 has the
  minimal intersection of its family -- when ``m(pi) ∩ pi ⊆ epsilon``.

**Lemma 1** prunes: ``m(pi) ∩ pi ⊄ epsilon`` is inherited by every superset
node, so the whole subtree can be discarded.

Two faithful-but-safe engineering additions, both switchable for the
accounting ablations:

* ``skip_redundant``: a child whose basis element is already below the
  current join contributes nothing new; its subtree is a duplicate of
  sibling subtrees and is skipped (node counts report how many).
* memoisation of node evaluations keyed by the join (different subsets can
  produce the same relation).

An optional ``policy="extended"`` additionally coarsens the m-side first
factor greedily towards ``M(pi)`` while the intersection condition holds;
the paper's procedure does not do this, and the ablation benchmark uses the
flag to probe the paper's exactness claim.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import SearchError
from ..fsm import MealyMachine
from ..fsm.equivalence import equivalence_labels
from ..partitions import Partition
from ..partitions import kernel
from ..partitions.mm import m_basis_labels
from .problem import OstrSolution, better, trivial_solution
from .theorem1 import PipelineRealization, realize

Labels = Tuple[int, ...]


@dataclass
class SearchStats:
    """Search-effort accounting (the substance of Table 2)."""

    basis_size: int = 0
    tree_size: int = 0
    investigated: int = 0
    pruned_subtrees: int = 0
    skipped_redundant: int = 0
    unique_joins: int = 0
    candidates_evaluated: int = 0
    improvements: int = 0
    elapsed_seconds: float = 0.0
    timed_out: bool = False
    node_limit_hit: bool = False

    @property
    def exact(self) -> bool:
        """Did the search cover the whole (pruned) tree?"""
        return not (self.timed_out or self.node_limit_hit)

    @property
    def tree_size_log2(self) -> int:
        return self.basis_size


@dataclass
class OstrResult:
    """Outcome of an OSTR search on one machine."""

    machine: MealyMachine
    solution: OstrSolution
    stats: SearchStats
    policy: str

    @property
    def exact(self) -> bool:
        return self.stats.exact

    def realization(self, name: str = None) -> PipelineRealization:
        """Instantiate (and verify) the Theorem-1 realization of the solution."""
        return realize(
            self.machine, self.solution.pi, self.solution.theta, name=name
        )

    def summary(self) -> str:
        sol = self.solution
        flag = "" if self.exact else " *"
        return (
            f"{self.machine.name}: |S|={self.machine.n_states} -> "
            f"|S1|={sol.k1}, |S2|={sol.k2}, flipflops={sol.flipflops}{flag} "
            f"(investigated {self.stats.investigated} of 2^"
            f"{self.stats.basis_size} nodes)"
        )


_BASIS_ORDERS = ("sorted", "coarse_first", "fine_first")
_POLICIES = ("paper", "extended")


def search_ostr(
    machine: MealyMachine,
    prune: bool = True,
    skip_redundant: bool = True,
    node_limit: Optional[int] = None,
    time_limit: Optional[float] = None,
    policy: str = "paper",
    basis_order: str = "sorted",
    fast: bool = True,
) -> OstrResult:
    """Solve OSTR for ``machine`` with the paper's depth-first procedure.

    Always returns a valid solution: the trivial doubling solution is the
    incumbent before the search starts, exactly as the paper observes that
    ``(identity, identity)`` always solves OSTR.  When ``node_limit`` or
    ``time_limit`` stop the search early, the best solution so far is
    returned and flagged (``result.exact == False``) -- this mirrors the
    ``tbk``/timeout row of Table 1.

    ``fast=True`` (default) runs the partition algebra on the optimised
    kernels: precomputed successor-row views (:class:`~repro.partitions.
    kernel.SuccOps`), the fused ``meet_refines`` check, the canonical-label
    join, and a memo of ``join(labels, basis[i])`` along the DFS edges so
    each unique (join, basis-element) pair is computed once.  ``fast=False``
    keeps the original operator-by-operator reference path; both produce
    identical solutions and identical search statistics (asserted by the
    equivalence tests), only the wall clock differs.
    """
    if policy not in _POLICIES:
        raise SearchError(f"unknown policy {policy!r}; choose from {_POLICIES}")
    if basis_order not in _BASIS_ORDERS:
        raise SearchError(
            f"unknown basis order {basis_order!r}; choose from {_BASIS_ORDERS}"
        )
    if node_limit is not None and node_limit < 1:
        raise SearchError("node_limit must be positive")

    succ = machine.succ_table
    n = machine.n_states
    states = machine.states
    epsilon = equivalence_labels(machine)
    basis = m_basis_labels(succ)
    if basis_order == "coarse_first":
        basis.sort(key=kernel.num_blocks)
    elif basis_order == "fine_first":
        basis.sort(key=kernel.num_blocks, reverse=True)
    n_basis = len(basis)

    stats = SearchStats(basis_size=n_basis, tree_size=2 ** n_basis)
    best = trivial_solution(states)

    if fast:
        ops = kernel.SuccOps(succ)
        m_of, big_m_of = ops.m, ops.big_m
        refines = ops.refines
        meet_refines = ops.meet_refines
        join_of = kernel.join_canonical
    else:
        refines = kernel.refines
        m_of = lambda labels: kernel.m_operator(succ, labels)  # noqa: E731
        big_m_of = lambda labels: kernel.big_m_operator(succ, labels)  # noqa: E731
        meet_refines = lambda a, b, eps: kernel.refines(  # noqa: E731
            kernel.meet(a, b), eps
        )
        join_of = kernel.join

    # Memo tables: joins repeat across subsets, and m/M are pure in the join.
    evaluation_cache: Dict[Labels, Tuple[List[Tuple[Labels, Labels]], bool]] = {}
    join_cache: Dict[Tuple[Labels, int], Labels] = {}

    def evaluate(labels: Labels) -> Tuple[List[Tuple[Labels, Labels]], bool]:
        """Candidates at this join and whether Lemma 1 prunes the subtree."""
        cached = evaluation_cache.get(labels)
        if cached is not None:
            return cached
        mu = m_of(labels)
        big = big_m_of(labels)
        m_side_ok = meet_refines(mu, labels, epsilon)
        prunable = not m_side_ok
        candidates: List[Tuple[Labels, Labels]] = []
        if refines(mu, big):  # symmetry of the Mm-pair
            if meet_refines(big, labels, epsilon):
                candidates.append((big, labels))
            elif m_side_ok:
                candidates.append((mu, labels))
            if m_side_ok and policy == "extended":
                candidates.extend(
                    _extended_candidates(succ, mu, big, labels, epsilon)
                )
        outcome = (candidates, prunable)
        evaluation_cache[labels] = outcome
        return outcome

    start_time = time.perf_counter()
    deadline = None if time_limit is None else start_time + time_limit
    root = kernel.identity(n)
    stack: List[Tuple[Labels, int]] = [(root, 0)]

    while stack:
        if node_limit is not None and stats.investigated >= node_limit:
            stats.node_limit_hit = True
            break
        if deadline is not None and stats.investigated % 128 == 0:
            if time.perf_counter() > deadline:
                stats.timed_out = True
                break
        labels, next_index = stack.pop()
        stats.investigated += 1

        candidates, prunable = evaluate(labels)
        for pi_labels, theta_labels in candidates:
            stats.candidates_evaluated += 1
            candidate = OstrSolution(
                pi=Partition(states, pi_labels),
                theta=Partition(states, theta_labels),
            )
            if better(candidate, best):
                best = candidate
                stats.improvements += 1

        if prune and prunable:
            stats.pruned_subtrees += 1
            continue

        for child_index in range(n_basis - 1, next_index - 1, -1):
            if fast:
                # join(labels, b) == labels iff b <= labels: the redundancy
                # test needs only a refinement scan, not the join itself.
                if skip_redundant and refines(basis[child_index], labels):
                    stats.skipped_redundant += 1
                    continue
                key = (labels, child_index)
                child = join_cache.get(key)
                if child is None:
                    child = join_of(labels, basis[child_index])
                    join_cache[key] = child
            else:
                child = join_of(labels, basis[child_index])
                if skip_redundant and child == labels:
                    stats.skipped_redundant += 1
                    continue
            stack.append((child, child_index + 1))

    stats.unique_joins = len(evaluation_cache)
    stats.elapsed_seconds = time.perf_counter() - start_time
    return OstrResult(machine=machine, solution=best, stats=stats, policy=policy)


def _color_coarsen(
    fine: Labels, bound: Labels, other: Labels, epsilon: Labels
) -> Labels:
    """Group blocks of ``fine`` within ``bound``-blocks, avoiding conflicts.

    A merged block must never contain two states that share an ``other``
    block without being ``epsilon``-equivalent (the meet condition of
    Theorem 1).  Any grouping between ``fine`` and ``bound`` keeps the
    symmetric-pair property, so fewer groups means a cheaper factor.
    Greedy first-fit over blocks ordered largest-first (Welsh-Powell
    style); deterministic, so runs are reproducible.
    """
    n = len(fine)
    members: Dict[int, List[int]] = {}
    for state in range(n):
        members.setdefault(fine[state], []).append(state)
    order = sorted(
        members, key=lambda block: (-len(members[block]), members[block][0])
    )

    def conflicts(states_a: List[int], states_b: List[int]) -> bool:
        for a in states_a:
            for b in states_b:
                if other[a] == other[b] and epsilon[a] != epsilon[b]:
                    return True
        return False

    groups: List[List[int]] = []  # states per group
    group_bound: List[int] = []
    assignment: Dict[int, int] = {}
    for block in order:
        states = members[block]
        placed = False
        for index, group in enumerate(groups):
            if group_bound[index] != bound[states[0]]:
                continue
            if not conflicts(states, group):
                group.extend(states)
                assignment[block] = index
                placed = True
                break
        if not placed:
            assignment[block] = len(groups)
            groups.append(list(states))
            group_bound.append(bound[states[0]])
    return kernel.canonical([assignment[fine[state]] for state in range(n)])


def _extended_candidates(
    succ, mu: Labels, big: Labels, pihat: Labels, epsilon: Labels
) -> List[Tuple[Labels, Labels]]:
    """Alternating coarsening of both factors (beyond the paper's policy).

    The paper evaluates only ``(M(pi), pi)`` and ``(m(pi), pi)`` per node,
    which provably misses optima whose factors lie strictly between those
    bounds (see EXPERIMENTS.md).  Starting from the always-valid m-side
    pair, alternately re-colour one side against the other until a
    fixpoint; every intermediate pair is a valid solution candidate.
    """
    candidates: List[Tuple[Labels, Labels]] = []
    first = _color_coarsen(mu, big, pihat, epsilon)
    second = pihat
    for _ in range(4):
        if not kernel.refines(kernel.meet(first, second), epsilon):
            break  # defensive; coloring should preserve the invariant
        candidates.append((first, second))
        second_low = kernel.m_operator(succ, first)
        second_high = kernel.big_m_operator(succ, first)
        if not kernel.refines(second_low, second_high):
            break
        new_second = _color_coarsen(second_low, second_high, first, epsilon)
        first_low = kernel.m_operator(succ, new_second)
        first_high = kernel.big_m_operator(succ, new_second)
        if not kernel.refines(first_low, first_high):
            break
        new_first = _color_coarsen(first_low, first_high, new_second, epsilon)
        if (new_first, new_second) == (first, second):
            break
        first, second = new_first, new_second
    # Belt and braces: the constructions above guarantee validity, but a
    # candidate that slipped through a bug here must never become the
    # reported optimum, so re-verify each pair.
    return [
        (a, b)
        for a, b in candidates
        if kernel.is_symmetric_pair(succ, a, b)
        and kernel.refines(kernel.meet(a, b), epsilon)
    ]
