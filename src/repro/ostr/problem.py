"""The OSTR optimisation problem: cost model and solution container.

OSTR (Optimal Self-Testable Realization, Section 2 of the paper): given a
machine ``M``, find a realization ``M* = (S1 x S2, I, O, delta*, lambda*)``
supporting a self-testable structure such that

* (i)  ``ceil(log2 |S1|) + ceil(log2 |S2|)`` is minimal, and
* (ii) ``| |S1| / |S2| - 1 |`` is minimal among solutions satisfying (i).

Criterion (i) is the number of flip-flops of the pipeline structure;
criterion (ii) balances the two registers so that the two self-test
sessions use pattern generators and signature registers of similar width.

For comparison columns of Table 1:

* a conventional BIST (Figure 2) needs ``2 * ceil(log2 |S|)`` flip-flops
  (system register ``R`` plus transparent test register ``T``);
* doubling (Figure 3) also needs ``2 * ceil(log2 |S|)`` flip-flops;
* the trivial OSTR solution (identity, identity) corresponds to doubling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..partitions import Partition


def register_bits(n_states: int) -> int:
    """Flip-flops needed for a register distinguishing ``n_states`` values."""
    if n_states < 1:
        raise ValueError("a register must hold at least one state")
    return max(0, (n_states - 1).bit_length())


def pipeline_flipflops(k1: int, k2: int) -> int:
    """Criterion (i): total flip-flops of the pipeline structure."""
    return register_bits(k1) + register_bits(k2)


def balance(k1: int, k2: int) -> float:
    """Criterion (ii) in orientation-free form: ``max/min - 1`` (>= 0).

    The paper's expression ``| |S1|/|S2| - 1 |`` depends on which factor is
    called ``S1``; since a solution ``(pi, theta)`` can always be flipped to
    ``(theta, pi)``, we compare solutions by the orientation-free value.
    """
    lo, hi = sorted((k1, k2))
    return hi / lo - 1.0


def conventional_bist_flipflops(n_states: int) -> int:
    """Column 5 of Table 1: flip-flops for the Figure-2 conventional BIST."""
    return 2 * register_bits(n_states)


def doubling_flipflops(n_states: int) -> int:
    """Flip-flops of the Figure-3 doubled structure (the trivial solution)."""
    return 2 * register_bits(n_states)


@dataclass(frozen=True)
class OstrSolution:
    """A symmetric partition pair solving OSTR for a specific machine.

    ``pi`` is the first factor's partition (``S1 = S/pi``) and ``theta`` the
    second (``S2 = S/theta``); together with the specification they fully
    determine the realization of Theorem 1.
    """

    pi: Partition
    theta: Partition

    @property
    def k1(self) -> int:
        """``|S1| = |S/pi|``."""
        return self.pi.num_blocks

    @property
    def k2(self) -> int:
        """``|S2| = |S/theta|``."""
        return self.theta.num_blocks

    @property
    def flipflops(self) -> int:
        """Criterion (i)."""
        return pipeline_flipflops(self.k1, self.k2)

    @property
    def balance(self) -> float:
        """Criterion (ii), orientation-free."""
        return balance(self.k1, self.k2)

    @property
    def n_states(self) -> int:
        return len(self.pi.universe)

    @property
    def is_trivial(self) -> bool:
        """Does this solution merely double the machine (both factors full size)?"""
        return self.k1 == self.n_states and self.k2 == self.n_states

    @property
    def is_nontrivial(self) -> bool:
        """Paper's Section 4 criterion: ``|S1| < |S|`` or ``|S2| < |S|``."""
        return not self.is_trivial

    def cost_key(self) -> Tuple:
        """Total order used to pick the best solution.

        Primary: criterion (i), the flip-flop count.  Then the total factor
        size ``|S1| + |S2|`` (smaller factor machines mean blocks C1/C2
        implement fewer state transitions), then criterion (ii), then
        deterministic tie-breakers so searches are reproducible.

        Note on fidelity: the paper's literal problem statement orders by
        (i) then (ii) only.  Read literally, that prefers the trivial
        doubling ``(7,7)`` (ratio 0) over the published dk27 answer
        ``(6,7)`` (ratio 1/7) -- so the authors' implementation evidently
        preferred smaller factors at equal flip-flop cost, which Section 4
        confirms ("the combined networks C1 and C2 need to implement less
        state transitions than the original network C").  We therefore rank
        ``|S1| + |S2|`` between (i) and (ii); EXPERIMENTS.md discusses the
        deviation.
        """
        return (
            self.flipflops,
            self.k1 + self.k2,
            self.balance,
            self.k1 * self.k2,
            self.pi.labels,
            self.theta.labels,
        )

    def oriented(self) -> "OstrSolution":
        """Return the orientation with ``|S1| >= |S2|`` (paper's Table 1 layout)."""
        if self.k1 >= self.k2:
            return self
        return OstrSolution(pi=self.theta, theta=self.pi)

    def __str__(self) -> str:
        kind = "trivial" if self.is_trivial else "nontrivial"
        return (
            f"OstrSolution(|S1|={self.k1}, |S2|={self.k2}, "
            f"flipflops={self.flipflops}, {kind})"
        )


def trivial_solution(universe) -> OstrSolution:
    """The always-available doubling solution ``(identity, identity)``."""
    identity = Partition.identity(universe)
    return OstrSolution(pi=identity, theta=identity)


def better(
    candidate: OstrSolution, incumbent: Optional[OstrSolution]
) -> bool:
    """Is ``candidate`` strictly better than ``incumbent`` under the cost order?"""
    if incumbent is None:
        return True
    return candidate.cost_key() < incumbent.cost_key()
