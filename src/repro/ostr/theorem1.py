"""The constructive core of the paper: Theorem 1.

Given a machine ``M = (S, I, O, delta, lambda)`` and a symmetric partition
pair ``(pi, theta)`` with ``pi ∩ theta ⊆ epsilon``, Theorem 1 constructs

* ``S* = S/pi x S/theta``, ``I* = I``, ``O* = O``,
* ``delta*((b1, b2), i) = (delta2(b2, i), delta1(b1, i))`` where
  ``delta1([s]pi, i)   = [delta(s, i)]theta`` and
  ``delta2([s]theta, i) = [delta(s, i)]pi``,
* ``lambda*((b1, b2), i) = lambda(s, i)`` for any ``s in b1 ∩ b2`` if the
  intersection is non-empty, else an arbitrary output ``o*``,

and proves that ``M*`` supports a self-testable structure and realizes ``M``
through ``alpha(s) = ([s]pi, [s]theta)``, ``iota = id``, ``zeta = id``.

This module builds that realization as an explicit
:class:`PipelineRealization` object holding the factor functions (the
Figure-7 tables), the full product machine, and the Definition-3 witness --
and verifies all of it eagerly, so a constructed object is always sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

from ..exceptions import RealizationError
from ..fsm import MealyMachine, RealizationWitness, check_realization
from ..fsm.equivalence import equivalence_labels
from ..partitions import Partition
from ..partitions import kernel
from .problem import OstrSolution, pipeline_flipflops, register_bits

FactorTable = Mapping[Tuple[str, object], str]


def _block_name(block: Tuple) -> str:
    """Readable block names in the paper's style: ``{1,2}``."""
    return "{" + ",".join(str(x) for x in block) + "}"


@dataclass(frozen=True)
class PipelineRealization:
    """A verified self-testable realization ``M*`` of a specification.

    Attributes mirror the objects of Theorem 1 and Figure 4:

    * ``s1_blocks`` / ``s2_blocks``: the factor state sets ``S1 = S/pi`` and
      ``S2 = S/theta`` (as named blocks);
    * ``delta1``: ``S1 x I -> S2`` -- implemented by combinational block C1;
    * ``delta2``: ``S2 x I -> S1`` -- implemented by combinational block C2;
    * ``machine``: the full product machine ``M*`` over ``S1 x S2``;
    * ``witness``: the Definition-3 triple ``(alpha, iota, zeta)``;
    * ``fallback_output``: the arbitrary ``o*`` used for product states
      outside the image of ``alpha``.
    """

    spec: MealyMachine
    solution: OstrSolution
    s1_blocks: Tuple[str, ...]
    s2_blocks: Tuple[str, ...]
    delta1: Dict[Tuple[str, object], str]
    delta2: Dict[Tuple[str, object], str]
    machine: MealyMachine
    witness: RealizationWitness
    fallback_output: object

    @property
    def pi(self) -> Partition:
        return self.solution.pi

    @property
    def theta(self) -> Partition:
        return self.solution.theta

    @property
    def flipflops(self) -> int:
        """Register bits of the pipeline structure (R1 + R2)."""
        return pipeline_flipflops(len(self.s1_blocks), len(self.s2_blocks))

    @property
    def register_widths(self) -> Tuple[int, int]:
        """Bits of R1 and R2 individually."""
        return (register_bits(len(self.s1_blocks)), register_bits(len(self.s2_blocks)))

    def alpha(self, state) -> Tuple[str, str]:
        """The state embedding ``alpha(s) = ([s]pi, [s]theta)``."""
        return self.witness.alpha[state]

    def factor_tables(self) -> str:
        """Pretty-print the Figure-7 style tables for ``delta1`` and ``delta2``."""
        lines = ["delta1: S1 x I -> S2"]
        lines.extend(self._table_lines(self.delta1, self.s1_blocks))
        lines.append("")
        lines.append("delta2: S2 x I -> S1")
        lines.extend(self._table_lines(self.delta2, self.s2_blocks))
        return "\n".join(lines)

    def _table_lines(self, table, rows):
        header = [""] + [str(i) for i in self.spec.inputs]
        body = []
        for row in rows:
            body.append([row] + [str(table[(row, i)]) for i in self.spec.inputs])
        widths = [
            max(len(line[c]) for line in [header] + body) for c in range(len(header))
        ]
        return [
            "  ".join(cell.rjust(width) for cell, width in zip(line, widths))
            for line in [header] + body
        ]


def realize(
    spec: MealyMachine,
    pi: Partition,
    theta: Partition,
    fallback_output=None,
    name: str = None,
) -> PipelineRealization:
    """Apply Theorem 1 to ``(spec, pi, theta)`` and verify the result.

    Raises :class:`RealizationError` when the hypotheses fail:
    ``(pi, theta)`` must be a symmetric partition pair and ``pi ∩ theta``
    must refine the state equivalence ``epsilon``.

    ``fallback_output`` is the arbitrary value ``o*`` of Theorem 1 used on
    product states outside ``alpha(S)``; it defaults to the first output
    symbol of the specification.
    """
    if pi.universe != spec.states or theta.universe != spec.states:
        raise RealizationError("partition universes must equal the machine states")
    succ = spec.succ_table
    # Hypothesis checks run on the machine's shared bitset kernel: the
    # search that produced (pi, theta) used the same kernel, so these are
    # memo hits rather than fresh label scans.
    kern = kernel.bitset_kernel(succ)
    if not kern.is_pair_labels(pi.labels, theta.labels):
        raise RealizationError("(pi, theta) is not a partition pair")
    if not kern.is_pair_labels(theta.labels, pi.labels):
        raise RealizationError("(pi, theta) is not symmetric ((theta, pi) fails)")
    epsilon = equivalence_labels(spec)
    if not kern.meet_refines_labels(pi.labels, theta.labels, epsilon):
        raise RealizationError(
            "pi ∩ theta does not refine the state equivalence epsilon; "
            "lambda* would be ill-defined"
        )
    if fallback_output is None:
        fallback_output = spec.outputs[0]
    else:
        spec.output_index(fallback_output)  # validate

    pi_blocks = pi.blocks()
    theta_blocks = theta.blocks()
    s1_names = tuple(_block_name(block) for block in pi_blocks)
    s2_names = tuple(_block_name(block) for block in theta_blocks)

    # Factor functions (Figure 7).  Well-definedness is guaranteed by the
    # partition-pair checks above; we compute from block representatives.
    delta1: Dict[Tuple[str, object], str] = {}
    for b1, block in enumerate(pi_blocks):
        representative = block[0]
        for symbol in spec.inputs:
            target = spec.delta(representative, symbol)
            delta1[(s1_names[b1], symbol)] = s2_names[theta.block_index(target)]
    delta2: Dict[Tuple[str, object], str] = {}
    for b2, block in enumerate(theta_blocks):
        representative = block[0]
        for symbol in spec.inputs:
            target = spec.delta(representative, symbol)
            delta2[(s2_names[b2], symbol)] = s1_names[pi.block_index(target)]

    # lambda*: defined through any witness state in b1 ∩ b2.
    intersection_witness: Dict[Tuple[str, str], object] = {}
    for state in spec.states:
        key = (
            s1_names[pi.block_index(state)],
            s2_names[theta.block_index(state)],
        )
        intersection_witness.setdefault(key, state)

    product_states = [(n1, n2) for n1 in s1_names for n2 in s2_names]
    transitions = {}
    for n1, n2 in product_states:
        for symbol in spec.inputs:
            next_state = (delta2[(n2, symbol)], delta1[(n1, symbol)])
            witness_state = intersection_witness.get((n1, n2))
            if witness_state is not None:
                output = spec.lam(witness_state, symbol)
            else:
                output = fallback_output
            transitions[((n1, n2), symbol)] = (next_state, output)

    alpha = {
        state: (
            s1_names[pi.block_index(state)],
            s2_names[theta.block_index(state)],
        )
        for state in spec.states
    }
    machine = MealyMachine(
        name if name is not None else f"{spec.name}*",
        product_states,
        spec.inputs,
        spec.outputs,
        transitions,
        reset_state=alpha[spec.reset_state],
    )
    witness = RealizationWitness(
        alpha=alpha,
        iota={symbol: symbol for symbol in spec.inputs},
        zeta={output: output for output in spec.outputs},
    )
    # Eager verification: a PipelineRealization object is sound by
    # construction, but we check Definition 3 exhaustively anyway so that
    # any future change to this constructor cannot silently break it.
    check_realization(spec, machine, witness)

    return PipelineRealization(
        spec=spec,
        solution=OstrSolution(pi=pi, theta=theta),
        s1_blocks=s1_names,
        s2_blocks=s2_names,
        delta1=delta1,
        delta2=delta2,
        machine=machine,
        witness=witness,
        fallback_output=fallback_output,
    )


def supports_self_testable_structure(
    machine: MealyMachine, s1_size: int, s2_size: int, state_splitter=None
) -> bool:
    """Definition 2 check for an explicitly product-structured machine.

    ``machine`` must have tuple states ``(s1, s2)``; the function verifies
    ``delta((s1,s2), i) = (delta2(s2,i), delta1(s1,i))`` for consistent
    single-argument functions ``delta1``/``delta2``.  ``state_splitter`` can
    override how a state decomposes into its two coordinates.
    """
    splitter = state_splitter if state_splitter is not None else lambda s: s
    delta1: Dict[Tuple[object, object], object] = {}
    delta2: Dict[Tuple[object, object], object] = {}
    for state in machine.states:
        parts = splitter(state)
        if not isinstance(parts, tuple) or len(parts) != 2:
            return False
        s1, s2 = parts
        for symbol in machine.inputs:
            target1, target2 = splitter(machine.delta(state, symbol))
            if delta2.setdefault((s2, symbol), target1) != target1:
                return False
            if delta1.setdefault((s1, symbol), target2) != target2:
                return False
    if len({splitter(s)[0] for s in machine.states}) != s1_size:
        return False
    if len({splitter(s)[1] for s in machine.states}) != s2_size:
        return False
    return True
