"""OSTR: Optimal Self-Testable Realization (the paper's core contribution).

High-level entry point::

    from repro.ostr import synthesize_self_testable

    result = synthesize_self_testable(machine)
    realization = result.realization()       # verified Theorem-1 object
    print(realization.factor_tables())        # Figure-7 style tables

"""

from .problem import (
    OstrSolution,
    balance,
    conventional_bist_flipflops,
    doubling_flipflops,
    pipeline_flipflops,
    register_bits,
    trivial_solution,
)
from .theorem1 import (
    PipelineRealization,
    realize,
    supports_self_testable_structure,
)
from .search import OstrResult, SearchStats, search_ostr
from .exhaustive import all_symmetric_pairs, count_symmetric_pairs, exhaustive_ostr
from .splitting import (
    SplitSearchResult,
    SplitStep,
    incoming_transitions,
    search_with_splitting,
    split_state,
)


def synthesize_self_testable(machine, **options) -> OstrResult:
    """Solve OSTR for ``machine`` (alias of :func:`search_ostr`).

    Keyword options are forwarded to :func:`repro.ostr.search.search_ostr`
    (``prune``, ``node_limit``, ``time_limit``, ``policy``, ...).
    """
    return search_ostr(machine, **options)


__all__ = [
    "OstrSolution",
    "OstrResult",
    "SearchStats",
    "PipelineRealization",
    "register_bits",
    "pipeline_flipflops",
    "balance",
    "conventional_bist_flipflops",
    "doubling_flipflops",
    "trivial_solution",
    "realize",
    "supports_self_testable_structure",
    "search_ostr",
    "synthesize_self_testable",
    "exhaustive_ostr",
    "all_symmetric_pairs",
    "count_symmetric_pairs",
    "split_state",
    "incoming_transitions",
    "search_with_splitting",
    "SplitStep",
    "SplitSearchResult",
]
