"""Exhaustive reference solver for OSTR (small machines only).

Enumerates *every* pair of partitions of the state set, keeps the symmetric
partition pairs with ``pi ∩ theta ⊆ epsilon``, and returns the optimum under
the OSTR cost order.  The number of partitions is the Bell number ``B(n)``,
so this is only feasible for machines with a handful of states -- which is
precisely its purpose: it is the ground truth against which the paper's
depth-first procedure is differential-tested, including the paper's claim
that evaluating only the M-side/m-side candidates per search node is exact.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from ..exceptions import SearchError
from ..fsm import MealyMachine
from ..fsm.equivalence import equivalence_labels
from ..partitions import Partition
from ..partitions import kernel
from .problem import OstrSolution, better, trivial_solution

# Bell numbers B(0..10); enumeration cost is B(n)^2 refinement checks.
_BELL = [1, 1, 2, 5, 15, 52, 203, 877, 4140, 21147, 115975]
_DEFAULT_MAX_STATES = 8


def all_symmetric_pairs(
    machine: MealyMachine, max_states: int = _DEFAULT_MAX_STATES
) -> Iterable[Tuple[Partition, Partition]]:
    """Yield every symmetric partition pair ``(pi, theta)`` of the machine.

    Pairs are yielded in a deterministic order.  The yield includes pairs
    violating the ``pi ∩ theta ⊆ epsilon`` side condition; use
    :func:`exhaustive_ostr` for solutions only.
    """
    n = machine.n_states
    if n > max_states:
        raise SearchError(
            f"exhaustive enumeration over {n} states would visit "
            f"~B({n})^2 = {_BELL[min(n, 10)] ** 2} pairs; "
            f"raise max_states explicitly if you really want this"
        )
    succ = machine.succ_table
    states = machine.states
    partitions: List[Tuple[int, ...]] = list(kernel.all_partitions(n))
    for pi_labels in partitions:
        # (pi, theta) symmetric  <=>  m(pi) <= theta <= M(pi)
        # (both inclusions follow from minimality/maximality of m/M).
        mu = kernel.m_operator(succ, pi_labels)
        big = kernel.big_m_operator(succ, pi_labels)
        if not kernel.refines(mu, big):
            continue
        for theta_labels in partitions:
            if kernel.refines(mu, theta_labels) and kernel.refines(
                theta_labels, big
            ):
                yield (
                    Partition(states, pi_labels),
                    Partition(states, theta_labels),
                )


def exhaustive_ostr(
    machine: MealyMachine, max_states: int = _DEFAULT_MAX_STATES
) -> OstrSolution:
    """The provably optimal OSTR solution by complete enumeration."""
    epsilon = equivalence_labels(machine)
    best: Optional[OstrSolution] = trivial_solution(machine.states)
    for pi, theta in all_symmetric_pairs(machine, max_states=max_states):
        if not kernel.refines(kernel.meet(pi.labels, theta.labels), epsilon):
            continue
        candidate = OstrSolution(pi=pi, theta=theta)
        if better(candidate, best):
            best = candidate
    return best


def count_symmetric_pairs(
    machine: MealyMachine, max_states: int = _DEFAULT_MAX_STATES
) -> int:
    """Number of symmetric partition pairs (diagnostic/benchmark helper)."""
    return sum(1 for _ in all_symmetric_pairs(machine, max_states=max_states))
