"""State splitting: the paper's "future work", implemented.

Section 5 of the paper: "Future work will concentrate on modifying the
state transition diagram to obtain functionally equivalent machines whose
self-testable realizations lead to better solutions of problem OSTR."

The transformation implemented here is classical **state splitting**: a
state ``s`` is replaced by copies ``s₀, s₁`` with identical outgoing rows,
and each transition formerly entering ``s`` is redirected to one of the
copies.  The split machine is behaviourally equivalent to the original
(the copies are equivalent states by construction), but its state set is
larger, which can *create* symmetric partition pairs that do not exist on
the original state set -- a state that plays two structural "roles" can
be separated into one copy per role.

:func:`search_with_splitting` wraps the OSTR search with a bounded
greedy exploration of split candidates:

1. solve OSTR on the current machine;
2. for each state with in-degree >= 2, try every two-way partition of its
   incoming transitions induced by (predecessor block, input) classes of
   the current best solution, plus a couple of generic bisections;
3. re-run OSTR on each split machine; keep the best improvement; repeat
   until no split improves the cost or the split budget is exhausted.

Every accepted machine is verified behaviourally equivalent to the
original specification, and the final realization realizes the *split*
machine exactly (Definition 3) while remaining I/O-equivalent to the
original -- both facts are re-checked here and in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import FsmError, SearchError
from ..fsm import MealyMachine, io_equivalent
from .problem import OstrSolution
from .search import OstrResult, search_ostr

Incoming = Tuple[int, int]  # (source state index, input index)


def split_state(
    machine: MealyMachine,
    state,
    incoming_to_copy: Sequence[Incoming],
    copy_suffixes: Tuple[str, str] = ("#0", "#1"),
) -> MealyMachine:
    """Split ``state`` into two equivalent copies.

    ``incoming_to_copy`` lists the (source, input) transition slots -- as
    index pairs -- that are redirected to the *second* copy; all other
    incoming transitions (and the reset designation, if applicable) stay
    on the first copy.  Self-loops of ``state`` are incoming transitions
    like any other; both copies keep identical outgoing behaviour, so the
    result is behaviourally equivalent wherever it starts.
    """
    target = machine.state_index(state)
    redirect: Set[Incoming] = set()
    for source, symbol_index in incoming_to_copy:
        if machine.succ_table[source][symbol_index] != target:
            raise FsmError(
                f"transition ({source}, {symbol_index}) does not enter "
                f"{state!r}; cannot redirect it"
            )
        redirect.add((source, symbol_index))

    first = f"{state}{copy_suffixes[0]}"
    second = f"{state}{copy_suffixes[1]}"
    new_states: List = []
    for position, name in enumerate(machine.states):
        if position == target:
            new_states.extend([first, second])
        else:
            new_states.append(name)
    if len(set(new_states)) != len(new_states):
        raise FsmError(f"split names collide for state {state!r}")

    def mapped(index: int) -> int:
        """New index of an old state (the split state maps to its first copy)."""
        return index if index <= target else index + 1

    n_inputs = machine.n_inputs
    succ: List[List[int]] = []
    out: List[List[int]] = []
    for position in range(machine.n_states):
        rows = [position] if position != target else [position, position]
        for row in rows:
            succ_row = []
            out_row = []
            for i in range(n_inputs):
                next_index = machine.succ_table[row][i]
                if next_index == target:
                    goes_second = (row, i) in redirect
                    new_next = target + (1 if goes_second else 0)
                else:
                    new_next = mapped(next_index)
                succ_row.append(new_next)
                out_row.append(machine.out_table[row][i])
            succ.append(succ_row)
            out.append(out_row)

    reset_index = machine.state_index(machine.reset_state)
    new_reset = new_states[mapped(reset_index)]
    return MealyMachine.from_tables(
        f"{machine.name}+split",
        new_states,
        machine.inputs,
        machine.outputs,
        succ,
        out,
        reset_state=new_reset,
    )


def incoming_transitions(machine: MealyMachine, state) -> List[Incoming]:
    """All (source index, input index) slots entering ``state``."""
    target = machine.state_index(state)
    slots = []
    for source in range(machine.n_states):
        for i in range(machine.n_inputs):
            if machine.succ_table[source][i] == target:
                slots.append((source, i))
    return slots


@dataclass(frozen=True)
class SplitStep:
    """One accepted splitting step, for reporting."""

    state: object
    redirected: Tuple[Incoming, ...]
    flipflops_before: int
    flipflops_after: int


@dataclass
class SplitSearchResult:
    """Outcome of :func:`search_with_splitting`."""

    original: MealyMachine
    machine: MealyMachine  # possibly split
    result: OstrResult  # OSTR result on `machine`
    steps: List[SplitStep]

    @property
    def solution(self) -> OstrSolution:
        return self.result.solution

    @property
    def improved(self) -> bool:
        return bool(self.steps)

    def summary(self) -> str:
        base = self.result.summary()
        if not self.steps:
            return base + " (no helpful split found)"
        trail = ", ".join(str(step.state) for step in self.steps)
        return base + f" (after splitting: {trail})"


def _candidate_partitions(
    machine: MealyMachine,
    slots: List[Incoming],
    solution: Optional[OstrSolution],
) -> List[Tuple[Incoming, ...]]:
    """Two-way splits of the incoming slots worth trying.

    Guided candidates group slots by the current solution's block of the
    *source* state (separating the structural roles the factors already
    distinguish); generic candidates bisect by source parity and by input.
    """
    candidates: List[Tuple[Incoming, ...]] = []

    def add(group: Sequence[Incoming]) -> None:
        group = tuple(sorted(group))
        if 0 < len(group) < len(slots) and group not in candidates:
            candidates.append(group)

    # Small in-degree: enumerate every two-way partition exactly (keep the
    # first slot on copy 0 to break the copy-swap symmetry).
    if len(slots) <= 5:
        rest = slots[1:]
        for mask in range(1, 1 << len(rest)):
            add([rest[j] for j in range(len(rest)) if (mask >> j) & 1])
        return candidates

    if solution is not None:
        for partition in (solution.pi, solution.theta):
            by_block: Dict[int, List[Incoming]] = {}
            for source, i in slots:
                block = partition.block_index(machine.states[source])
                by_block.setdefault(block, []).append((source, i))
            if len(by_block) >= 2:
                blocks = sorted(by_block)
                add(
                    [slot for block in blocks[: len(blocks) // 2]
                     for slot in by_block[block]]
                )
    by_input: Dict[int, List[Incoming]] = {}
    for source, i in slots:
        by_input.setdefault(i, []).append((source, i))
    if len(by_input) >= 2:
        inputs = sorted(by_input)
        add([slot for i in inputs[: len(inputs) // 2] for slot in by_input[i]])
    add(slots[: len(slots) // 2])
    add(slots[1::2])
    return candidates


def search_with_splitting(
    machine: MealyMachine,
    max_splits: int = 2,
    max_states: int = 64,
    search_options: Optional[Dict] = None,
) -> SplitSearchResult:
    """OSTR over the original machine and bounded state-split variants.

    Greedy: accepts the first-best improving split each round.  The cost
    comparison is on the OSTR cost key (flip-flops, then factor sizes, then
    balance), so a split is only accepted when it strictly helps.

    Every inner search runs on the bitset-native engine by default (one
    OSTR search per candidate split makes this the engine's heaviest
    caller); pass ``search_options={"reference": True}`` to run the whole
    exploration on the label-tuple oracle instead -- accepted splits and
    costs are identical either way.
    """
    if max_splits < 0:
        raise SearchError("max_splits must be non-negative")
    options = dict(search_options or {})
    current = machine
    current_result = search_ostr(current, **options)
    steps: List[SplitStep] = []

    for _ in range(max_splits):
        if current.n_states >= max_states:
            break
        best_improvement = None  # (cost_key, machine, result, step)
        for state in current.states:
            slots = incoming_transitions(current, state)
            if len(slots) < 2:
                continue
            for group in _candidate_partitions(
                current, slots, current_result.solution
            ):
                try:
                    split = split_state(current, state, group)
                except FsmError:
                    continue
                result = search_ostr(split, **options)
                if result.solution.cost_key()[:3] >= current_result.solution.cost_key()[:3]:
                    continue
                key = result.solution.cost_key()
                if best_improvement is None or key < best_improvement[0]:
                    step = SplitStep(
                        state=state,
                        redirected=tuple(group),
                        flipflops_before=current_result.solution.flipflops,
                        flipflops_after=result.solution.flipflops,
                    )
                    best_improvement = (key, split, result, step)
        if best_improvement is None:
            break
        _, current, current_result, step = best_improvement
        # Behavioural safety net: the split machine must be I/O-equivalent.
        if not io_equivalent(
            machine, machine.reset_state, current, current.reset_state
        ):
            raise SearchError(
                "internal error: accepted split changed machine behaviour"
            )
        steps.append(step)

    return SplitSearchResult(
        original=machine, machine=current, result=current_result, steps=steps
    )
