"""A small union-find (disjoint-set) structure.

Used as the workhorse for partition joins and for the ``m`` operator of
algebraic structure theory (the smallest equivalence relation containing a
set of pairs).  Path halving plus union by size gives effectively constant
amortised operations at the sizes that occur here (tens of states).
"""

from __future__ import annotations

from typing import Iterable, List, Tuple


class UnionFind:
    """Disjoint sets over the integers ``0 .. n-1``."""

    __slots__ = ("_parent", "_size", "_n_sets")

    def __init__(self, n: int) -> None:
        if n < 0:
            raise ValueError("union-find size must be non-negative")
        self._parent: List[int] = list(range(n))
        self._size: List[int] = [1] * n
        self._n_sets = n

    def __len__(self) -> int:
        return len(self._parent)

    @property
    def n_sets(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._n_sets

    def find(self, x: int) -> int:
        """Return the representative of the set containing ``x``."""
        parent = self._parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, x: int, y: int) -> bool:
        """Merge the sets containing ``x`` and ``y``.

        Returns ``True`` if a merge happened, ``False`` if they were already
        in the same set.
        """
        rx, ry = self.find(x), self.find(y)
        if rx == ry:
            return False
        if self._size[rx] < self._size[ry]:
            rx, ry = ry, rx
        self._parent[ry] = rx
        self._size[rx] += self._size[ry]
        self._n_sets -= 1
        return True

    def same(self, x: int, y: int) -> bool:
        """Return whether ``x`` and ``y`` are currently in the same set."""
        return self.find(x) == self.find(y)

    def add_pairs(self, pairs: Iterable[Tuple[int, int]]) -> None:
        """Union every pair in ``pairs``."""
        for x, y in pairs:
            self.union(x, y)

    def labels(self) -> Tuple[int, ...]:
        """Return canonical block labels (first-occurrence numbering).

        The result is the standard "restricted growth string" form: block
        ids are assigned in order of the first element of each block, so two
        structurally equal partitions always produce equal label tuples.
        """
        mapping = {}
        out = []
        for x in range(len(self._parent)):
            root = self.find(x)
            label = mapping.get(root)
            if label is None:
                label = len(mapping)
                mapping[root] = label
            out.append(label)
        return tuple(out)
