"""Partition algebra: equivalence relations, lattice operations, partition pairs.

This package implements the algebraic-structure-theory substrate
(Hartmanis/Stearns) that Section 3 of the paper builds on: partitions of the
state set, the lattice of equivalence relations, partition pairs, the ``m``
and ``M`` operators, and the Mm basis used by the OSTR search.
"""

from .partition import Partition
from .unionfind import UnionFind
from .pairs import (
    big_m_of,
    is_mm_pair,
    is_partition_pair,
    is_symmetric_pair,
    m_of,
)
from .mm import m_basis, mm_pairs

__all__ = [
    "Partition",
    "UnionFind",
    "is_partition_pair",
    "is_symmetric_pair",
    "is_mm_pair",
    "m_of",
    "big_m_of",
    "m_basis",
    "mm_pairs",
]
