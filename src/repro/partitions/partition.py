"""The public :class:`Partition` type: an equivalence relation on a finite set.

A :class:`Partition` wraps a canonical label tuple (see
:mod:`repro.partitions.kernel`) together with an ordered *universe* of
arbitrary hashable elements.  All lattice operations require both operands
to share the same universe, in the same order; this is checked and raised
as :class:`~repro.exceptions.PartitionError` otherwise.

The paper works with equivalence relations as subsets of ``S x S`` ordered
by inclusion; here ``pi <= theta`` (``pi.refines(theta)``) corresponds to
``pi ⊆ theta`` in the paper's notation, ``|`` is the lattice join (union
followed by transitive closure) and ``&`` is the meet (intersection).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, Sequence, Tuple

from ..exceptions import PartitionError
from . import kernel


class Partition:
    """An equivalence relation on an ordered finite universe.

    Derived structures (the element index, the block tuples, the hash)
    are computed lazily and cached on the instance, and lattice-operation
    results share the universe tuple and the element index of their
    operands -- building a Partition per search candidate or per lattice
    op costs one tuple, not a dict rebuild.
    """

    __slots__ = ("_universe", "_labels", "_index", "_blocks", "_hash")

    def __init__(self, universe: Sequence[Hashable], labels: Sequence[int]) -> None:
        universe = tuple(universe)
        if len(universe) != len(set(universe)):
            raise PartitionError("universe contains duplicate elements")
        if len(labels) != len(universe):
            raise PartitionError(
                f"labels length {len(labels)} does not match universe size {len(universe)}"
            )
        if not kernel.is_canonical(labels):
            labels = kernel.canonical(labels)
        self._universe: Tuple[Hashable, ...] = universe
        self._labels: Tuple[int, ...] = tuple(labels)
        self._index = None
        self._blocks = None
        self._hash = None

    @classmethod
    def _from_canonical(
        cls,
        universe: Tuple[Hashable, ...],
        labels: Tuple[int, ...],
        index: Dict[Hashable, int] = None,
    ) -> "Partition":
        """Internal fast constructor: trusted canonical labels, shared index.

        Used where the invariants hold by construction (lattice-op results
        over an already-validated universe), skipping the duplicate check
        and re-canonicalization scan of the public constructor.
        """
        self = object.__new__(cls)
        self._universe = universe
        self._labels = labels
        self._index = index
        self._blocks = None
        self._hash = None
        return self

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, universe: Sequence[Hashable]) -> "Partition":
        """The finest partition (the identity relation ``=`` of the paper)."""
        return cls(universe, kernel.identity(len(universe)))

    @classmethod
    def one(cls, universe: Sequence[Hashable]) -> "Partition":
        """The coarsest partition (all elements related)."""
        return cls(universe, kernel.one_block(len(universe)))

    @classmethod
    def from_blocks(
        cls,
        universe: Sequence[Hashable],
        block_list: Iterable[Iterable[Hashable]],
    ) -> "Partition":
        """Build from explicit blocks; unmentioned elements become singletons."""
        universe = tuple(universe)
        index = {x: i for i, x in enumerate(universe)}
        try:
            index_blocks = [[index[x] for x in block] for block in block_list]
        except KeyError as exc:
            raise PartitionError(f"block element {exc.args[0]!r} not in universe") from exc
        built = cls(universe, kernel.from_blocks(len(universe), index_blocks))
        built._index = index
        return built

    @classmethod
    def from_pairs(
        cls,
        universe: Sequence[Hashable],
        pairs: Iterable[Tuple[Hashable, Hashable]],
    ) -> "Partition":
        """Smallest equivalence relation containing all given pairs."""
        universe = tuple(universe)
        index = {x: i for i, x in enumerate(universe)}
        try:
            index_pairs = [(index[x], index[y]) for x, y in pairs]
        except KeyError as exc:
            raise PartitionError(f"pair element {exc.args[0]!r} not in universe") from exc
        built = cls(universe, kernel.from_pairs(len(universe), index_pairs))
        built._index = index
        return built

    # -- basic queries -----------------------------------------------------

    @property
    def universe(self) -> Tuple[Hashable, ...]:
        return self._universe

    @property
    def labels(self) -> Tuple[int, ...]:
        """Canonical label tuple (block id per universe position)."""
        return self._labels

    @property
    def num_blocks(self) -> int:
        return kernel.num_blocks(self._labels)

    def blocks(self) -> Tuple[Tuple[Hashable, ...], ...]:
        """Blocks as tuples of elements, in canonical (first-occurrence) order."""
        blocks = self._blocks
        if blocks is None:
            blocks = self._blocks = tuple(
                tuple(self._universe[i] for i in block)
                for block in kernel.blocks(self._labels)
            )
        return blocks

    def block_of(self, element: Hashable) -> FrozenSet[Hashable]:
        """The equivalence class ``[element]`` as a frozenset."""
        position = self._position(element)
        label = self._labels[position]
        return frozenset(
            x for x, l in zip(self._universe, self._labels) if l == label
        )

    def block_index(self, element: Hashable) -> int:
        """Canonical block id of ``element``."""
        return self._labels[self._position(element)]

    def related(self, x: Hashable, y: Hashable) -> bool:
        """Are ``x`` and ``y`` equivalent?"""
        return self._labels[self._position(x)] == self._labels[self._position(y)]

    def is_identity(self) -> bool:
        return self.num_blocks == len(self._universe)

    def _position(self, element: Hashable) -> int:
        index = self._index
        if index is None:
            index = self._index = {x: i for i, x in enumerate(self._universe)}
        try:
            return index[element]
        except KeyError as exc:
            raise PartitionError(f"element {element!r} not in universe") from exc

    def _check_universe(self, other: "Partition") -> None:
        if self._universe != other._universe:
            raise PartitionError("partitions are over different universes")

    # -- lattice operations --------------------------------------------------

    def join(self, other: "Partition") -> "Partition":
        """Finest common coarsening (the ``u`` + transitive closure of the paper)."""
        self._check_universe(other)
        ops = kernel.bitset_lattice(len(self._labels))
        return Partition._from_canonical(
            self._universe, ops.join_labels(self._labels, other._labels), self._index
        )

    def meet(self, other: "Partition") -> "Partition":
        """Coarsest common refinement (set intersection of the relations)."""
        self._check_universe(other)
        ops = kernel.bitset_lattice(len(self._labels))
        return Partition._from_canonical(
            self._universe, ops.meet_labels(self._labels, other._labels), self._index
        )

    def refines(self, other: "Partition") -> bool:
        """``self ⊆ other`` as relations (``self`` is finer)."""
        self._check_universe(other)
        return kernel.bitset_lattice(len(self._labels)).refines_labels(
            self._labels, other._labels
        )

    def __or__(self, other: "Partition") -> "Partition":
        return self.join(other)

    def __and__(self, other: "Partition") -> "Partition":
        return self.meet(other)

    def __le__(self, other: "Partition") -> bool:
        return self.refines(other)

    def __ge__(self, other: "Partition") -> bool:
        return other.refines(self)

    def __lt__(self, other: "Partition") -> bool:
        return self.refines(other) and self != other

    def __gt__(self, other: "Partition") -> bool:
        return other.refines(self) and self != other

    # -- relation view -------------------------------------------------------

    def pairs(self) -> Iterator[Tuple[Hashable, Hashable]]:
        """Yield all ordered related pairs including reflexive ones.

        This is the subset-of-``S x S`` view used by the paper (an
        equivalence relation *is* its set of pairs).
        """
        for block in self.blocks():
            for x in block:
                for y in block:
                    yield (x, y)

    # -- dunder --------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Partition):
            return NotImplemented
        return self._universe == other._universe and self._labels == other._labels

    def __hash__(self) -> int:
        value = self._hash
        if value is None:
            value = self._hash = hash((self._universe, self._labels))
        return value

    def __len__(self) -> int:
        return self.num_blocks

    def __iter__(self) -> Iterator[Tuple[Hashable, ...]]:
        return iter(self.blocks())

    def __repr__(self) -> str:
        body = ", ".join(
            "{" + ",".join(str(x) for x in block) + "}" for block in self.blocks()
        )
        return f"Partition[{body}]"
