"""Partition pairs for a finite state machine (Definition 4 of the paper).

These are thin, typed wrappers over :mod:`repro.partitions.kernel` that work
on :class:`~repro.partitions.partition.Partition` objects and a successor
table.  The successor table is the index-based next-state function
``succ[s][i]`` and is deliberately decoupled from the FSM class so that the
partition layer has no dependency on :mod:`repro.fsm`.  All queries route
through the shared per-machine :func:`~repro.partitions.kernel.
bitset_kernel`, so repeated questions about the same machine hit its memo
caches.

Terminology maps to the paper as follows (``pi``/``theta`` are equivalence
relations on the state set ``S``):

* ``(pi, theta)`` is a **partition pair** iff
  ``(s,t) in pi  =>  (delta(s,i), delta(t,i)) in theta`` for all ``i``.
* ``(pi, theta)`` is **symmetric** iff ``(theta, pi)`` is a pair as well.
* ``m(pi)``   -- smallest ``theta`` with ``(pi, theta)`` a pair.
* ``M(theta)`` -- largest  ``pi``   with ``(pi, theta)`` a pair.
* ``(pi, theta)`` is an **Mm-pair** iff ``M(theta) = pi`` and ``m(pi) = theta``.
"""

from __future__ import annotations

from typing import Sequence

from ..exceptions import PartitionError
from . import kernel
from .partition import Partition

SuccTable = Sequence[Sequence[int]]


def _check(succ: SuccTable, *parts: Partition) -> None:
    n = len(succ)
    for part in parts:
        if len(part.universe) != n:
            raise PartitionError(
                f"partition universe size {len(part.universe)} does not match "
                f"successor table size {n}"
            )
    if len(parts) == 2 and parts[0].universe != parts[1].universe:
        raise PartitionError("partitions are over different universes")


def is_partition_pair(succ: SuccTable, pi: Partition, theta: Partition) -> bool:
    """Definition 4: does ``delta`` map ``pi``-classes into ``theta``-classes?"""
    _check(succ, pi, theta)
    return kernel.bitset_kernel(succ).is_pair_labels(pi.labels, theta.labels)


def is_symmetric_pair(succ: SuccTable, pi: Partition, theta: Partition) -> bool:
    """Are both ``(pi, theta)`` and ``(theta, pi)`` partition pairs?"""
    _check(succ, pi, theta)
    kern = kernel.bitset_kernel(succ)
    return kern.is_pair_labels(pi.labels, theta.labels) and kern.is_pair_labels(
        theta.labels, pi.labels
    )


def m_of(succ: SuccTable, pi: Partition) -> Partition:
    """``m(pi)``: the smallest ``theta`` such that ``(pi, theta)`` is a pair."""
    _check(succ, pi)
    return Partition._from_canonical(
        pi.universe, kernel.bitset_kernel(succ).m_labels(pi.labels)
    )


def big_m_of(succ: SuccTable, theta: Partition) -> Partition:
    """``M(theta)``: the largest ``pi`` such that ``(pi, theta)`` is a pair."""
    _check(succ, theta)
    return Partition._from_canonical(
        theta.universe, kernel.bitset_kernel(succ).big_m_labels(theta.labels)
    )


def is_mm_pair(succ: SuccTable, pi: Partition, theta: Partition) -> bool:
    """Definition 5: ``M(theta) == pi`` and ``m(pi) == theta``."""
    _check(succ, pi, theta)
    kern = kernel.bitset_kernel(succ)
    return (
        kern.big_m_labels(theta.labels) == pi.labels
        and kern.m_labels(pi.labels) == theta.labels
    )
