"""Low-level partition operations on canonical label tuples.

The OSTR depth-first search evaluates partition-algebra operators at every
node of a potentially very large search tree, so the inner loop avoids
objects entirely.  A partition of ``{0, .., n-1}`` is represented as a
*canonical label tuple*: ``labels[i]`` is the block id of element ``i`` and
block ids are assigned in order of first occurrence (``labels[0] == 0``, a
new id is always exactly one larger than the current maximum).  This is the
"restricted growth string" normal form, so structural equality of partitions
is plain tuple equality and tuples are directly hashable for memo tables.

Machine transition structure enters through a *successor table*
``succ[s][i]`` giving the next-state index of state ``s`` under input ``i``.
The two operators of algebraic structure theory (Hartmanis/Stearns, as used
by the paper) are provided here:

* :func:`m_operator` -- the smallest equivalence ``m(pi)`` such that
  ``(pi, m(pi))`` is a partition pair,
* :func:`big_m_operator` -- the largest equivalence ``M(theta)`` such that
  ``(M(theta), theta)`` is a partition pair.

All functions are pure and side-effect free.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from .unionfind import UnionFind

Labels = Tuple[int, ...]
SuccTable = Sequence[Sequence[int]]


def canonical(raw: Sequence[int]) -> Labels:
    """Renumber arbitrary block labels into first-occurrence canonical form."""
    mapping: Dict[int, int] = {}
    out: List[int] = []
    for value in raw:
        label = mapping.get(value)
        if label is None:
            label = len(mapping)
            mapping[value] = label
        out.append(label)
    return tuple(out)


def identity(n: int) -> Labels:
    """The finest partition: every element in its own block."""
    return tuple(range(n))


def one_block(n: int) -> Labels:
    """The coarsest partition: a single block (empty tuple for ``n == 0``)."""
    return (0,) * n


def is_canonical(labels: Sequence[int]) -> bool:
    """Return whether ``labels`` is in first-occurrence canonical form."""
    seen = -1
    for value in labels:
        if value > seen + 1 or value < 0:
            return False
        if value == seen + 1:
            seen = value
    return True


def num_blocks(labels: Labels) -> int:
    """Number of blocks of a canonical label tuple."""
    return (max(labels) + 1) if labels else 0


def blocks(labels: Labels) -> Tuple[Tuple[int, ...], ...]:
    """Return the blocks as tuples of element indices, in block-id order."""
    out: List[List[int]] = [[] for _ in range(num_blocks(labels))]
    for element, label in enumerate(labels):
        out[label].append(element)
    return tuple(tuple(block) for block in out)


def from_pairs(n: int, pairs: Iterable[Tuple[int, int]]) -> Labels:
    """Smallest equivalence relation on ``0..n-1`` containing ``pairs``."""
    uf = UnionFind(n)
    uf.add_pairs(pairs)
    return uf.labels()


def from_blocks(n: int, block_list: Iterable[Iterable[int]]) -> Labels:
    """Partition whose non-singleton structure is given by ``block_list``.

    Elements not mentioned become singletons.  Blocks may overlap (the
    result is the equivalence closure), which keeps this convenient for
    building test fixtures.
    """
    uf = UnionFind(n)
    for block in block_list:
        members = list(block)
        for other in members[1:]:
            uf.union(members[0], other)
    return uf.labels()


def join(a: Labels, b: Labels) -> Labels:
    """Finest common coarsening (lattice join) of two partitions."""
    n = len(a)
    uf = UnionFind(n)
    first_a: Dict[int, int] = {}
    first_b: Dict[int, int] = {}
    for element in range(n):
        la, lb = a[element], b[element]
        if la in first_a:
            uf.union(first_a[la], element)
        else:
            first_a[la] = element
        if lb in first_b:
            uf.union(first_b[lb], element)
        else:
            first_b[lb] = element
    return uf.labels()


def join_many(parts: Sequence[Labels], n: int) -> Labels:
    """Join of an arbitrary collection of partitions of ``0..n-1``."""
    uf = UnionFind(n)
    for labels in parts:
        first: Dict[int, int] = {}
        for element in range(n):
            label = labels[element]
            if label in first:
                uf.union(first[label], element)
            else:
                first[label] = element
    return uf.labels()


def meet(a: Labels, b: Labels) -> Labels:
    """Coarsest common refinement (lattice meet) of two partitions."""
    mapping: Dict[Tuple[int, int], int] = {}
    out: List[int] = []
    for la, lb in zip(a, b):
        key = (la, lb)
        label = mapping.get(key)
        if label is None:
            label = len(mapping)
            mapping[key] = label
        out.append(label)
    return tuple(out)


def refines(a: Labels, b: Labels) -> bool:
    """Return whether ``a <= b`` (every block of ``a`` is inside a block of ``b``)."""
    seen: Dict[int, int] = {}
    for la, lb in zip(a, b):
        previous = seen.get(la)
        if previous is None:
            seen[la] = lb
        elif previous != lb:
            return False
    return True


def related(labels: Labels, x: int, y: int) -> bool:
    """Return whether ``x`` and ``y`` are in the same block."""
    return labels[x] == labels[y]


def meet_refines(a: Labels, b: Labels, bound: Labels) -> bool:
    """Fused ``refines(meet(a, b), bound)`` without materialising the meet.

    The OSTR search asks this question for every node of the tree (twice
    for symmetric nodes), so the fused single pass -- group elements by
    their ``(a, b)`` label pair and demand a consistent ``bound`` label per
    group -- removes one full meet construction and one refinement pass
    from the hot path.  Equivalent to the composition by definition of the
    lattice meet.
    """
    seen: Dict[Tuple[int, int], int] = {}
    for la, lb, limit in zip(a, b, bound):
        key = (la, lb)
        previous = seen.get(key)
        if previous is None:
            seen[key] = limit
        elif previous != limit:
            return False
    return True


def _canonical_from_parents(parent: List[int]) -> Labels:
    """First-occurrence canonical labels of an inline union-find forest."""
    n = len(parent)
    mapping = [-1] * n
    out = [0] * n
    next_label = 0
    for element in range(n):
        root = element
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        label = mapping[root]
        if label < 0:
            label = next_label
            mapping[root] = label
            next_label += 1
        out[element] = label
    return tuple(out)


def join_canonical(a: Labels, b: Labels) -> Labels:
    """Lattice join specialised for canonical label tuples.

    Identical result to :func:`join`; block-id-indexed first-occurrence
    arrays replace the dict lookups (canonical ids are dense, bounded by
    ``n``) and the union-find is inlined with path halving -- the
    depth-first OSTR search performs one join per tree edge, so call
    overhead here is a top-line cost of Table 1.
    """
    n = len(a)
    parent = list(range(n))
    for labels in (a, b):
        first = [-1] * n
        for element in range(n):
            label = labels[element]
            anchor = first[label]
            if anchor < 0:
                first[label] = element
                continue
            x, y = anchor, element
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            while parent[y] != y:
                parent[y] = parent[parent[y]]
                y = parent[y]
            if x != y:
                parent[y if y > x else x] = x if y > x else y
    return _canonical_from_parents(parent)


class SuccOps:
    """Precomputed successor-table views for the partition-algebra hot path.

    Flattens the (possibly list-of-list) successor table into row tuples
    once, so the ``m``/``M`` operators iterate with ``zip``/``map`` over
    interned tuples instead of indexing nested sequences.  Results are
    identical to :func:`m_operator` / :func:`big_m_operator` (the property
    tests compare them exhaustively); only constant factors change.
    """

    __slots__ = (
        "n",
        "n_inputs",
        "rows",
        "_mark",
        "_value",
        "_pair_mark",
        "_pair_value",
        "_generation",
    )

    def __init__(self, succ: SuccTable) -> None:
        self.rows: Tuple[Tuple[int, ...], ...] = tuple(tuple(row) for row in succ)
        self.n = len(self.rows)
        self.n_inputs = len(self.rows[0]) if self.rows else 0
        # Generation-marked scratch arrays: validity is encoded in the mark,
        # so the refinement scans never pay to clear their state.
        self._mark = [0] * self.n
        self._value = [0] * self.n
        self._pair_mark = [0] * (self.n * self.n)
        self._pair_value = [0] * (self.n * self.n)
        self._generation = 0

    def refines(self, a: Labels, b: Labels) -> bool:
        """Scratch-array :func:`refines` (canonical inputs, no dict traffic)."""
        generation = self._generation = self._generation + 1
        mark = self._mark
        value = self._value
        for la, lb in zip(a, b):
            if mark[la] != generation:
                mark[la] = generation
                value[la] = lb
            elif value[la] != lb:
                return False
        return True

    def meet_refines(self, a: Labels, b: Labels, bound: Labels) -> bool:
        """Scratch-array :func:`meet_refines` over dense ``(a, b)`` pair keys."""
        generation = self._generation = self._generation + 1
        mark = self._pair_mark
        value = self._pair_value
        n = self.n
        for la, lb, limit in zip(a, b, bound):
            key = la * n + lb
            if mark[key] != generation:
                mark[key] = generation
                value[key] = limit
            elif value[key] != limit:
                return False
        return True

    def m(self, labels: Labels) -> Labels:
        """Fast :func:`m_operator` over the precomputed rows.

        Inline path-halving union-find over successor pairs; identical
        output, none of the per-union call overhead (the OSTR search makes
        millions of unions on the Table-1 machines).
        """
        n = self.n
        parent = list(range(n))
        rows = self.rows
        representative = [-1] * n
        for state in range(n):
            label = labels[state]
            rep = representative[label]
            if rep < 0:
                representative[label] = state
                continue
            for x, y in zip(rows[rep], rows[state]):
                while parent[x] != x:
                    parent[x] = parent[parent[x]]
                    x = parent[x]
                while parent[y] != y:
                    parent[y] = parent[parent[y]]
                    y = parent[y]
                if x != y:
                    parent[y if y > x else x] = x if y > x else y
        return _canonical_from_parents(parent)

    def big_m(self, labels: Labels) -> Labels:
        """Fast :func:`big_m_operator` over the precomputed rows.

        Successor signatures are folded into a single integer (base ``n``
        positional code) instead of a tuple: equality of codes is equality
        of signatures, and int keys hash far faster than tuples.
        """
        mapping: Dict[int, int] = {}
        get = mapping.get
        n = self.n
        out: List[int] = []
        if self.n_inputs == 2:  # dominant case in the benchmark suite
            for first, second in self.rows:
                signature = labels[first] * n + labels[second]
                label = get(signature)
                if label is None:
                    label = len(mapping)
                    mapping[signature] = label
                out.append(label)
            return tuple(out)
        for row in self.rows:
            signature = 0
            for next_state in row:
                signature = signature * n + labels[next_state]
            label = get(signature)
            if label is None:
                label = len(mapping)
                mapping[signature] = label
            out.append(label)
        return tuple(out)


def meet_is_identity(a: Labels, b: Labels) -> bool:
    """Fast check that ``a ∧ b`` is the identity partition."""
    seen = set()
    for pair in zip(a, b):
        if pair in seen:
            return False
        seen.add(pair)
    return True


def m_operator(succ: SuccTable, labels: Labels) -> Labels:
    """The ``m`` operator: smallest ``theta`` with ``(labels, theta)`` a pair.

    Constructively, ``m(pi)`` is the equivalence closure of all successor
    pairs ``(delta(s, i), delta(t, i))`` with ``s ~pi t``.  It suffices to
    chain each block through one representative.
    """
    n = len(labels)
    uf = UnionFind(n)
    n_inputs = len(succ[0]) if n else 0
    representative: Dict[int, int] = {}
    for state in range(n):
        label = labels[state]
        rep = representative.get(label)
        if rep is None:
            representative[label] = state
            continue
        row_rep = succ[rep]
        row_state = succ[state]
        for i in range(n_inputs):
            uf.union(row_rep[i], row_state[i])
    return uf.labels()


def big_m_operator(succ: SuccTable, labels: Labels) -> Labels:
    """The ``M`` operator: largest ``pi`` with ``(pi, labels)`` a pair.

    Two states are related by ``M(theta)`` iff for every input their
    successors are ``theta``-related, i.e. iff their successor *signature*
    (tuple of successor block ids) is identical.  Grouping by signature
    yields the partition directly; transitivity is inherited from equality
    of signatures.
    """
    mapping: Dict[Tuple[int, ...], int] = {}
    out: List[int] = []
    for row in succ:
        signature = tuple(labels[next_state] for next_state in row)
        label = mapping.get(signature)
        if label is None:
            label = len(mapping)
            mapping[signature] = label
        out.append(label)
    return tuple(out)


def is_pair(succ: SuccTable, a: Labels, b: Labels) -> bool:
    """Definition 4: is ``(a, b)`` a partition pair for the machine?

    ``(s, t) in a  ==>  (delta(s,i), delta(t,i)) in b`` for all inputs ``i``.
    Equivalently each ``a``-block maps under every input into a single
    ``b``-block, which we check through per-block representatives.
    """
    n = len(a)
    n_inputs = len(succ[0]) if n else 0
    representative: Dict[int, int] = {}
    for state in range(n):
        label = a[state]
        rep = representative.get(label)
        if rep is None:
            representative[label] = state
            continue
        row_rep = succ[rep]
        row_state = succ[state]
        for i in range(n_inputs):
            if b[row_rep[i]] != b[row_state[i]]:
                return False
    return True


def is_symmetric_pair(succ: SuccTable, a: Labels, b: Labels) -> bool:
    """Is ``(a, b)`` a symmetric partition pair (both orders are pairs)?"""
    return is_pair(succ, a, b) and is_pair(succ, b, a)


def all_partitions(n: int) -> Iterable[Labels]:
    """Yield every partition of ``0..n-1`` in canonical form.

    Enumerates restricted growth strings; the count is the Bell number
    ``B(n)``, so this is only for small ``n`` (reference/exhaustive search
    and property tests).
    """
    if n == 0:
        yield ()
        return
    labels = [0] * n
    maxima = [0] * n

    while True:
        yield tuple(labels)
        position = n - 1
        while position > 0 and labels[position] == maxima[position - 1] + 1:
            position -= 1
        if position == 0:
            return
        labels[position] += 1
        maxima[position] = max(maxima[position - 1], labels[position])
        for tail in range(position + 1, n):
            labels[tail] = 0
            maxima[tail] = maxima[position]
