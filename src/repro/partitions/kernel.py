"""Low-level partition operations: canonical label tuples and block bitsets.

The OSTR depth-first search evaluates partition-algebra operators at every
node of a potentially very large search tree, so the inner loop avoids
objects entirely.  Two interchangeable representations of a partition of
``{0, .., n-1}`` are provided:

* a *canonical label tuple*: ``labels[i]`` is the block id of element ``i``
  and block ids are assigned in order of first occurrence (``labels[0] ==
  0``, a new id is always exactly one larger than the current maximum).
  This is the "restricted growth string" normal form, so structural
  equality of partitions is plain tuple equality and tuples are directly
  hashable for memo tables.  The pure functions of this module
  (:func:`meet`, :func:`join`, :func:`refines`, :func:`m_operator`,
  :func:`big_m_operator`, ...) operate on this form and are the *reference
  oracle* for everything faster;

* a *canonical mask tuple*: one Python-int bitmask per block (bit ``i``
  set iff element ``i`` is in the block), ordered by lowest set bit --
  which coincides with first-occurrence label order, so the two forms are
  bijective (:func:`labels_to_masks` / :func:`masks_to_labels`).  The
  :class:`BitsetLattice` / :class:`BitsetKernel` classes implement the
  same algebra word-parallel on this form (AND/OR/popcount over whole
  blocks at once) with per-universe and per-``SuccTable`` memo caches;
  the production search and the :class:`~repro.partitions.partition.
  Partition` call sites route through them.

Machine transition structure enters through a *successor table*
``succ[s][i]`` giving the next-state index of state ``s`` under input ``i``.
The two operators of algebraic structure theory (Hartmanis/Stearns, as used
by the paper) are provided in both representations:

* ``m`` -- the smallest equivalence ``m(pi)`` such that ``(pi, m(pi))`` is
  a partition pair (:func:`m_operator` / :meth:`BitsetKernel.m`),
* ``M`` -- the largest equivalence ``M(theta)`` such that ``(M(theta),
  theta)`` is a partition pair (:func:`big_m_operator` /
  :meth:`BitsetKernel.big_m`).

The module-level functions are pure and side-effect free; the bitset
classes are immutable except for their internal memo caches.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .unionfind import UnionFind

Labels = Tuple[int, ...]
Masks = Tuple[int, ...]
SuccTable = Sequence[Sequence[int]]


def canonical(raw: Sequence[int]) -> Labels:
    """Renumber arbitrary block labels into first-occurrence canonical form."""
    mapping: Dict[int, int] = {}
    out: List[int] = []
    for value in raw:
        label = mapping.get(value)
        if label is None:
            label = len(mapping)
            mapping[value] = label
        out.append(label)
    return tuple(out)


def identity(n: int) -> Labels:
    """The finest partition: every element in its own block."""
    return tuple(range(n))


def one_block(n: int) -> Labels:
    """The coarsest partition: a single block (empty tuple for ``n == 0``)."""
    return (0,) * n


def is_canonical(labels: Sequence[int]) -> bool:
    """Return whether ``labels`` is in first-occurrence canonical form."""
    seen = -1
    for value in labels:
        if value > seen + 1 or value < 0:
            return False
        if value == seen + 1:
            seen = value
    return True


def num_blocks(labels: Labels) -> int:
    """Number of blocks of a canonical label tuple."""
    return (max(labels) + 1) if labels else 0


def blocks(labels: Labels) -> Tuple[Tuple[int, ...], ...]:
    """Return the blocks as tuples of element indices, in block-id order."""
    out: List[List[int]] = [[] for _ in range(num_blocks(labels))]
    for element, label in enumerate(labels):
        out[label].append(element)
    return tuple(tuple(block) for block in out)


def from_pairs(n: int, pairs: Iterable[Tuple[int, int]]) -> Labels:
    """Smallest equivalence relation on ``0..n-1`` containing ``pairs``."""
    uf = UnionFind(n)
    uf.add_pairs(pairs)
    return uf.labels()


def from_blocks(n: int, block_list: Iterable[Iterable[int]]) -> Labels:
    """Partition whose non-singleton structure is given by ``block_list``.

    Elements not mentioned become singletons.  Blocks may overlap (the
    result is the equivalence closure), which keeps this convenient for
    building test fixtures.
    """
    uf = UnionFind(n)
    for block in block_list:
        members = list(block)
        for other in members[1:]:
            uf.union(members[0], other)
    return uf.labels()


def join(a: Labels, b: Labels) -> Labels:
    """Finest common coarsening (lattice join) of two partitions."""
    n = len(a)
    uf = UnionFind(n)
    first_a: Dict[int, int] = {}
    first_b: Dict[int, int] = {}
    for element in range(n):
        la, lb = a[element], b[element]
        if la in first_a:
            uf.union(first_a[la], element)
        else:
            first_a[la] = element
        if lb in first_b:
            uf.union(first_b[lb], element)
        else:
            first_b[lb] = element
    return uf.labels()


def join_many(parts: Sequence[Labels], n: int) -> Labels:
    """Join of an arbitrary collection of partitions of ``0..n-1``."""
    uf = UnionFind(n)
    for labels in parts:
        first: Dict[int, int] = {}
        for element in range(n):
            label = labels[element]
            if label in first:
                uf.union(first[label], element)
            else:
                first[label] = element
    return uf.labels()


def meet(a: Labels, b: Labels) -> Labels:
    """Coarsest common refinement (lattice meet) of two partitions."""
    mapping: Dict[Tuple[int, int], int] = {}
    out: List[int] = []
    for la, lb in zip(a, b):
        key = (la, lb)
        label = mapping.get(key)
        if label is None:
            label = len(mapping)
            mapping[key] = label
        out.append(label)
    return tuple(out)


def refines(a: Labels, b: Labels) -> bool:
    """Return whether ``a <= b`` (every block of ``a`` is inside a block of ``b``)."""
    seen: Dict[int, int] = {}
    for la, lb in zip(a, b):
        previous = seen.get(la)
        if previous is None:
            seen[la] = lb
        elif previous != lb:
            return False
    return True


def related(labels: Labels, x: int, y: int) -> bool:
    """Return whether ``x`` and ``y`` are in the same block."""
    return labels[x] == labels[y]


def meet_refines(a: Labels, b: Labels, bound: Labels) -> bool:
    """Fused ``refines(meet(a, b), bound)`` without materialising the meet.

    The OSTR search asks this question for every node of the tree (twice
    for symmetric nodes), so the fused single pass -- group elements by
    their ``(a, b)`` label pair and demand a consistent ``bound`` label per
    group -- removes one full meet construction and one refinement pass
    from the hot path.  Equivalent to the composition by definition of the
    lattice meet.
    """
    seen: Dict[Tuple[int, int], int] = {}
    for la, lb, limit in zip(a, b, bound):
        key = (la, lb)
        previous = seen.get(key)
        if previous is None:
            seen[key] = limit
        elif previous != limit:
            return False
    return True


def meet_is_identity(a: Labels, b: Labels) -> bool:
    """Fast check that ``a ∧ b`` is the identity partition."""
    seen = set()
    for pair in zip(a, b):
        if pair in seen:
            return False
        seen.add(pair)
    return True


def m_operator(succ: SuccTable, labels: Labels) -> Labels:
    """The ``m`` operator: smallest ``theta`` with ``(labels, theta)`` a pair.

    Constructively, ``m(pi)`` is the equivalence closure of all successor
    pairs ``(delta(s, i), delta(t, i))`` with ``s ~pi t``.  It suffices to
    chain each block through one representative.
    """
    n = len(labels)
    uf = UnionFind(n)
    n_inputs = len(succ[0]) if n else 0
    representative: Dict[int, int] = {}
    for state in range(n):
        label = labels[state]
        rep = representative.get(label)
        if rep is None:
            representative[label] = state
            continue
        row_rep = succ[rep]
        row_state = succ[state]
        for i in range(n_inputs):
            uf.union(row_rep[i], row_state[i])
    return uf.labels()


def big_m_operator(succ: SuccTable, labels: Labels) -> Labels:
    """The ``M`` operator: largest ``pi`` with ``(pi, labels)`` a pair.

    Two states are related by ``M(theta)`` iff for every input their
    successors are ``theta``-related, i.e. iff their successor *signature*
    (tuple of successor block ids) is identical.  Grouping by signature
    yields the partition directly; transitivity is inherited from equality
    of signatures.
    """
    mapping: Dict[Tuple[int, ...], int] = {}
    out: List[int] = []
    for row in succ:
        signature = tuple(labels[next_state] for next_state in row)
        label = mapping.get(signature)
        if label is None:
            label = len(mapping)
            mapping[signature] = label
        out.append(label)
    return tuple(out)


def is_pair(succ: SuccTable, a: Labels, b: Labels) -> bool:
    """Definition 4: is ``(a, b)`` a partition pair for the machine?

    ``(s, t) in a  ==>  (delta(s,i), delta(t,i)) in b`` for all inputs ``i``.
    Equivalently each ``a``-block maps under every input into a single
    ``b``-block, which we check through per-block representatives.
    """
    n = len(a)
    n_inputs = len(succ[0]) if n else 0
    representative: Dict[int, int] = {}
    for state in range(n):
        label = a[state]
        rep = representative.get(label)
        if rep is None:
            representative[label] = state
            continue
        row_rep = succ[rep]
        row_state = succ[state]
        for i in range(n_inputs):
            if b[row_rep[i]] != b[row_state[i]]:
                return False
    return True


def is_symmetric_pair(succ: SuccTable, a: Labels, b: Labels) -> bool:
    """Is ``(a, b)`` a symmetric partition pair (both orders are pairs)?"""
    return is_pair(succ, a, b) and is_pair(succ, b, a)


# ---------------------------------------------------------------------------
# Bitset-native partition algebra
# ---------------------------------------------------------------------------


def labels_to_masks(labels: Sequence[int]) -> Masks:
    """Canonical label tuple -> canonical mask tuple (one int per block).

    Block ``k``'s mask has bit ``i`` set iff ``labels[i] == k``.  Canonical
    first-occurrence label order is exactly ascending lowest-set-bit order
    of the masks, so the conversion is a bijection on canonical forms.
    """
    if not labels:
        return ()
    out = [0] * (max(labels) + 1)
    bit = 1
    for label in labels:
        out[label] |= bit
        bit <<= 1
    return tuple(out)


def masks_to_labels(masks: Masks, n: int) -> Labels:
    """Canonical mask tuple -> canonical label tuple (inverse conversion)."""
    out = [0] * n
    for index, mask in enumerate(masks):
        rest = mask
        while rest:
            low = rest & -rest
            out[low.bit_length() - 1] = index
            rest ^= low
    return tuple(out)


def _lowbit_key(mask: int) -> int:
    """Sort key: a block mask's lowest set bit (canonical block order)."""
    return mask & -mask


class BitsetLattice:
    """Word-parallel partition lattice over a fixed ``n``-element universe.

    Partitions are canonical mask tuples; every operation touches whole
    blocks with single big-int AND/OR/subset instructions instead of
    per-element label scans.  Derived per-partition structure (the
    nontrivial blocks, the element->block arrays, the label form) is memo
    cached keyed by the masks tuple, because the same operands recur
    constantly in the OSTR search and in :class:`~repro.partitions.
    partition.Partition` call sites.  Caches self-clear past a size limit
    so long campaigns cannot grow them without bound.
    """

    __slots__ = (
        "n",
        "identity_masks",
        "one_masks",
        "_nontrivial",
        "_arrays",
        "_masks_of",
        "_labels_of",
        "_sparse_owners",
    )

    _CACHE_LIMIT = 1 << 17

    def __init__(self, n: int) -> None:
        self.n = n
        self.identity_masks: Masks = tuple(1 << i for i in range(n))
        self.one_masks: Masks = ((1 << n) - 1,) if n else ()
        self._nontrivial: Dict[Masks, Tuple[int, ...]] = {}
        self._arrays: Dict[Masks, Tuple[List[int], List[int]]] = {}
        self._masks_of: Dict[Labels, Masks] = {}
        self._labels_of: Dict[Masks, Labels] = {}
        self._sparse_owners: Dict[Masks, List[int]] = {}

    # -- conversions and cached structure views -----------------------------

    def from_labels(self, labels: Labels) -> Masks:
        """Cached :func:`labels_to_masks` (labels must be canonical)."""
        masks = self._masks_of.get(labels)
        if masks is None:
            if len(self._masks_of) >= self._CACHE_LIMIT:
                self._masks_of.clear()
            masks = self._masks_of[labels] = labels_to_masks(labels)
        return masks

    def to_labels(self, masks: Masks) -> Labels:
        """Cached :func:`masks_to_labels`."""
        labels = self._labels_of.get(masks)
        if labels is None:
            if len(self._labels_of) >= self._CACHE_LIMIT:
                self._labels_of.clear()
            labels = self._labels_of[masks] = masks_to_labels(masks, self.n)
        return labels

    def nontrivial(self, masks: Masks) -> Tuple[int, ...]:
        """The blocks with more than one element (all others are inert)."""
        nt = self._nontrivial.get(masks)
        if nt is None:
            if len(self._nontrivial) >= self._CACHE_LIMIT:
                self._nontrivial.clear()
            nt = self._nontrivial[masks] = tuple(
                mask for mask in masks if mask & (mask - 1)
            )
        return nt

    def arrays(self, masks: Masks) -> Tuple[List[int], List[int]]:
        """Per-element views: ``labels[i]`` block index, ``owner[i]`` block mask."""
        entry = self._arrays.get(masks)
        if entry is None:
            if len(self._arrays) >= self._CACHE_LIMIT:
                self._arrays.clear()
            labels = [0] * self.n
            owner = [0] * self.n
            for index, mask in enumerate(masks):
                rest = mask
                while rest:
                    low = rest & -rest
                    element = low.bit_length() - 1
                    labels[element] = index
                    owner[element] = mask
                    rest ^= low
            entry = self._arrays[masks] = (labels, owner)
        return entry

    # -- the sparse (nontrivial-blocks-only) representation -----------------
    #
    # A partition is equally determined by its nontrivial blocks alone
    # (every uncovered element is a singleton).  The OSTR search runs on
    # this form: deep search nodes have few nontrivial blocks, so joins
    # assemble tuples of a handful of masks instead of ~n.

    def from_sparse(self, sparse: Masks) -> Masks:
        """Nontrivial-blocks form -> full canonical mask tuple."""
        covered = 0
        for mask in sparse:
            covered |= mask
        out = list(sparse)
        rest = (self.one_masks[0] & ~covered) if self.n else 0
        while rest:
            low = rest & -rest
            out.append(low)
            rest ^= low
        out.sort(key=_lowbit_key)
        return tuple(out)

    def sparse_owner(self, sparse: Masks) -> List[int]:
        """Owner array of a nontrivial-blocks partition (cached)."""
        owner = self._sparse_owners.get(sparse)
        if owner is None:
            if len(self._sparse_owners) >= self._CACHE_LIMIT:
                self._sparse_owners.clear()
            owner = [1 << i for i in range(self.n)]
            for mask in sparse:
                rest = mask
                while rest:
                    low = rest & -rest
                    owner[low.bit_length() - 1] = mask
                    rest ^= low
            self._sparse_owners[sparse] = owner
        return owner

    @staticmethod
    def _resolve_constraints(
        owner: List[int], constraints: Sequence[int]
    ) -> Optional[List[int]]:
        """Resolve constraint masks through ``owner`` into merged masks.

        The shared core of :meth:`join_constraints` and :meth:`join_sparse`:
        each constraint visits one representative bit per distinct block
        (the rest cleared with a single AND) and accumulates the union of
        the blocks it touches; constraints already inside one block are
        dropped, and overlapping accumulated masks are unioned.  Returns
        ``None`` when every constraint was a no-op (the join is ``base``).
        """
        merged: Optional[List[int]] = None
        for constraint in constraints:
            rest = constraint
            block = owner[(rest & -rest).bit_length() - 1]
            acc = block
            rest &= ~block
            if not rest:
                continue  # constraint already inside one block: no-op
            while rest:
                block = owner[(rest & -rest).bit_length() - 1]
                acc |= block
                rest &= ~block
            if merged is None:
                merged = [acc]
                continue
            for i in range(len(merged) - 1, -1, -1):
                other = merged[i]
                if other & acc:
                    acc |= other
                    del merged[i]
            merged.append(acc)
        return merged

    def join_sparse(
        self,
        base: Masks,
        constraints: Sequence[int],
        owner: Optional[List[int]] = None,
    ) -> Masks:
        """:meth:`join_constraints` on the nontrivial-blocks representation.

        Identical merge logic, but the assembly only walks the nontrivial
        blocks: absorbed ones are dropped, each merged mask is inserted,
        and the small result list is re-sorted into canonical lowest-bit
        order.  A fully redundant call returns ``base`` itself.
        """
        if not constraints:
            return base
        if owner is None:
            owner = self.sparse_owner(base)
        merged = self._resolve_constraints(owner, constraints)
        if merged is None:
            return base
        union = 0
        for acc in merged:
            union |= acc
        out = [mask for mask in base if not mask & union]
        out += merged
        out.sort(key=_lowbit_key)
        return tuple(out)

    # -- lattice operations -------------------------------------------------

    def meet(self, a: Masks, b: Masks) -> Masks:
        """Coarsest common refinement: split every block of ``a`` by ``b``."""
        if a == b:
            return a
        owner_b = self.arrays(b)[1]
        out: List[int] = []
        for am in a:
            if am & (am - 1):
                rest = am
                while rest:
                    low = rest & -rest
                    block = rest & owner_b[low.bit_length() - 1]
                    out.append(block)
                    rest ^= block
            else:
                out.append(am)
        out.sort(key=_lowbit_key)
        return tuple(out)

    def join_constraints(
        self,
        base: Masks,
        constraints: Sequence[int],
        owner: Optional[List[int]] = None,
    ) -> Masks:
        """Coarsen ``base`` until every constraint mask lies inside one block.

        The workhorse behind :meth:`join` and :meth:`BitsetKernel.m`, and
        the hot form for the search (which passes each basis element's
        pre-extracted nontrivial blocks).  Each constraint's reach is
        resolved through the owner array into one merged mask -- visiting
        a single representative bit per distinct block, the rest cleared
        with one AND -- overlapping merged masks are unioned, and the
        result is assembled in canonical order by emitting each merged
        mask in place of its lowest block.  Constraints already inside one
        block are dropped on the fly, so a fully redundant call returns
        ``base`` itself without rebuilding it.
        """
        if not constraints:
            return base
        if owner is None:
            owner = self.arrays(base)[1]
        merged = self._resolve_constraints(owner, constraints)
        if merged is None:
            return base
        # Every base block is either disjoint from the merged region or a
        # subset of exactly one merged mask; emit each merged mask in
        # place of its lowest block and drop the other absorbed blocks.
        union = 0
        lows: Dict[int, int] = {}
        for acc in merged:
            union |= acc
            lows[acc & -acc] = acc
        return tuple(
            lows[mask & -mask] if mask & union else mask
            for mask in base
            if not mask & union or (mask & -mask) in lows
        )

    def join(self, a: Masks, b: Masks) -> Masks:
        """Finest common coarsening: merge ``a``-blocks along ``b``'s blocks."""
        if a == b:
            return a
        return self.join_constraints(a, self.nontrivial(b))

    def refines(self, a: Masks, b: Masks) -> bool:
        """``a <= b``: every (nontrivial) block of ``a`` inside a ``b`` block."""
        if a == b:
            return True
        owner_b = self.arrays(b)[1]
        for am in self.nontrivial(a):
            low = am & -am
            if am & ~owner_b[low.bit_length() - 1]:
                return False
        return True

    def meet_refines(self, a: Masks, b: Masks, bound: Masks) -> bool:
        """Fused ``refines(meet(a, b), bound)`` without materialising the meet."""
        return self.meet_refines_owner(a, b, self.arrays(bound)[1])

    def meet_refines_owner(
        self, a: Masks, b: Masks, bound_owner: List[int]
    ) -> bool:
        """:meth:`meet_refines` against a precomputed bound owner array.

        Only multi-element intersections can violate the bound, so the scan
        walks nontrivial-block pairs and tests each intersection against
        the bound block of its lowest element with one subset instruction.
        """
        nt_b = self.nontrivial(b)
        for am in self.nontrivial(a):
            for bm in nt_b:
                x = am & bm
                if x & (x - 1):
                    if x & ~bound_owner[(x & -x).bit_length() - 1]:
                        return False
        return True

    # -- label-level wrappers (Partition and friends) -----------------------

    def meet_labels(self, a: Labels, b: Labels) -> Labels:
        return self.to_labels(self.meet(self.from_labels(a), self.from_labels(b)))

    def join_labels(self, a: Labels, b: Labels) -> Labels:
        return self.to_labels(self.join(self.from_labels(a), self.from_labels(b)))

    def refines_labels(self, a: Labels, b: Labels) -> bool:
        return self.refines(self.from_labels(a), self.from_labels(b))


class BitsetKernel(BitsetLattice):
    """Machine-bound bitset partition algebra (the paper's Mm operators).

    Binds :class:`BitsetLattice` to one successor table: successor bits
    (``1 << succ[s][i]``) and per-input preimage masks are precomputed
    once, and ``m``/``big_m`` results are memo cached per partition -- the
    OSTR search, Theorem-1 verification and the ``pairs``/``mm`` helpers
    all share one kernel per machine through :func:`bitset_kernel`.
    """

    __slots__ = ("rows", "n_inputs", "succ_bits", "_pre", "_m_cache", "_big_m_cache")

    def __init__(self, succ: SuccTable) -> None:
        rows = tuple(tuple(row) for row in succ)
        super().__init__(len(rows))
        self.rows = rows
        self.n_inputs = len(rows[0]) if rows else 0
        self.succ_bits: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(1 << target for target in row) for row in rows
        )
        pre = [[0] * self.n for _ in range(self.n_inputs)]
        for state, row in enumerate(rows):
            bit = 1 << state
            for i, target in enumerate(row):
                pre[i][target] |= bit
        self._pre: Tuple[Tuple[int, ...], ...] = tuple(tuple(p) for p in pre)
        self._m_cache: Dict[Masks, Masks] = {}
        self._big_m_cache: Dict[Masks, Masks] = {}

    def image(self, mask: int, i: int) -> int:
        """Successor image of a state set under input ``i``, as a mask."""
        succ_bits = self.succ_bits
        out = 0
        rest = mask
        while rest:
            low = rest & -rest
            out |= succ_bits[low.bit_length() - 1][i]
            rest ^= low
        return out

    def m(self, masks: Masks) -> Masks:
        """Bitset :func:`m_operator`: close the successor images of blocks.

        Every nontrivial block contributes one image mask per input; the
        result is the identity partition coarsened until each image lies
        inside one block.  Memoised per partition.
        """
        cached = self._m_cache.get(masks)
        if cached is not None:
            return cached
        if len(self._m_cache) >= self._CACHE_LIMIT:
            self._m_cache.clear()
        constraints: List[int] = []
        n_inputs = self.n_inputs
        for bm in self.nontrivial(masks):
            for i in range(n_inputs):
                img = self.image(bm, i)
                if img & (img - 1):
                    constraints.append(img)
        result = self.join_constraints(self.identity_masks, constraints)
        self._m_cache[masks] = result
        return result

    def big_m(self, masks: Masks) -> Masks:
        """Bitset :func:`big_m_operator` via word-parallel preimages.

        ``M(theta)`` is the meet over inputs of the preimage partitions
        ``{ delta_i^{-1}(B) | B in theta }``; each preimage block is an OR
        of per-target preimage masks.  Memoised per partition.
        """
        cached = self._big_m_cache.get(masks)
        if cached is not None:
            return cached
        if len(self._big_m_cache) >= self._CACHE_LIMIT:
            self._big_m_cache.clear()
        if self.n_inputs == 0:
            result = self.one_masks
        else:
            result = None
            for i in range(self.n_inputs):
                pre_i = self._pre[i]
                blocks: List[int] = []
                for tb in masks:
                    pm = 0
                    rest = tb
                    while rest:
                        low = rest & -rest
                        pm |= pre_i[low.bit_length() - 1]
                        rest ^= low
                    if pm:
                        blocks.append(pm)
                blocks.sort(key=_lowbit_key)
                part = tuple(blocks)
                result = part if result is None else self.meet(result, part)
        self._big_m_cache[masks] = result
        return result

    def is_pair(self, a: Masks, b: Masks) -> bool:
        """Definition 4 on masks: each ``a``-block's images stay in ``b`` blocks."""
        owner_b = self.arrays(b)[1]
        for am in self.nontrivial(a):
            for i in range(self.n_inputs):
                img = self.image(am, i)
                if img & ~owner_b[(img & -img).bit_length() - 1]:
                    return False
        return True

    def is_symmetric_pair(self, a: Masks, b: Masks) -> bool:
        return self.is_pair(a, b) and self.is_pair(b, a)

    # -- label-level wrappers -----------------------------------------------

    def m_labels(self, labels: Labels) -> Labels:
        return self.to_labels(self.m(self.from_labels(labels)))

    def big_m_labels(self, labels: Labels) -> Labels:
        return self.to_labels(self.big_m(self.from_labels(labels)))

    def is_pair_labels(self, a: Labels, b: Labels) -> bool:
        return self.is_pair(self.from_labels(a), self.from_labels(b))

    def meet_refines_labels(self, a: Labels, b: Labels, bound: Labels) -> bool:
        return self.meet_refines(
            self.from_labels(a), self.from_labels(b), self.from_labels(bound)
        )


_LATTICES: Dict[int, BitsetLattice] = {}
_KERNELS: Dict[Tuple[Tuple[int, ...], ...], BitsetKernel] = {}
_KERNEL_LIMIT = 64


def bitset_lattice(n: int) -> BitsetLattice:
    """The shared per-universe-size :class:`BitsetLattice` instance."""
    lattice = _LATTICES.get(n)
    if lattice is None:
        if len(_LATTICES) >= _KERNEL_LIMIT:
            _LATTICES.clear()
        lattice = _LATTICES[n] = BitsetLattice(n)
    return lattice


def bitset_kernel(succ: SuccTable) -> BitsetKernel:
    """The shared per-successor-table :class:`BitsetKernel` instance.

    Sharing matters: the search, Theorem-1 verification and the pair
    helpers all query the same machine, and the kernel's memo caches make
    the second and later callers cheap.
    """
    key = tuple(tuple(row) for row in succ)
    kern = _KERNELS.get(key)
    if kern is None:
        if len(_KERNELS) >= _KERNEL_LIMIT:
            _KERNELS.clear()
        kern = _KERNELS[key] = BitsetKernel(key)
    return kern


def all_partitions(n: int) -> Iterable[Labels]:
    """Yield every partition of ``0..n-1`` in canonical form.

    Enumerates restricted growth strings; the count is the Bell number
    ``B(n)``, so this is only for small ``n`` (reference/exhaustive search
    and property tests).
    """
    if n == 0:
        yield ()
        return
    labels = [0] * n
    maxima = [0] * n

    while True:
        yield tuple(labels)
        position = n - 1
        while position > 0 and labels[position] == maxima[position - 1] + 1:
            position -= 1
        if position == 0:
            return
        labels[position] += 1
        maxima[position] = max(maxima[position - 1], labels[position])
        for tail in range(position + 1, n):
            labels[tail] = 0
            maxima[tail] = maxima[position]
