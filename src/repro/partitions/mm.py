"""Basis relations and the Mm-lattice skeleton (Hartmanis/Stearns).

The OSTR search of the paper is built on the classical observation that the
Mm-pairs of a machine form a lattice that can be generated from the *basis
relations*

    ``rho_{s,t} = identity  ∪  {(s,t), (t,s)}``

through the ``m`` operator: every "m side" of an Mm-pair is a join of
elements of ``m_basis = { m(rho_{s,t}) | s, t in S }`` (because ``m``
distributes over joins and every equivalence relation is the join of the
``rho`` relations of its related pairs).

This module computes the deduplicated basis and, for small machines, the
full set of Mm-pairs -- the latter is used by reference implementations and
property tests rather than the production search.
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple

from . import kernel
from .partition import Partition

SuccTable = Sequence[Sequence[int]]
Labels = Tuple[int, ...]


def rho(n: int, s: int, t: int) -> Labels:
    """The basis relation ``rho_{s,t}`` identifying exactly ``s`` and ``t``."""
    return kernel.from_pairs(n, [(s, t)])


def m_basis_labels(succ: SuccTable, include_identity: bool = False) -> List[Labels]:
    """Deduplicated, deterministically ordered ``{ m(rho_{s,t}) | s < t }``.

    The identity partition contributes nothing to joins, so by default it is
    dropped (the paper orders the set "arbitrarily"; we sort canonically so
    runs are reproducible).  Set ``include_identity=True`` to keep it, which
    only matters for accounting experiments.
    """
    n = len(succ)
    seen: Set[Labels] = set()
    for s in range(n):
        for t in range(s + 1, n):
            labels = kernel.from_pairs(n, [(succ[s][i], succ[t][i]) for i in range(len(succ[s]))])
            if not include_identity and kernel.num_blocks(labels) == n:
                continue
            seen.add(labels)
    return sorted(seen)


def m_basis(succ: SuccTable, universe: Sequence) -> List[Partition]:
    """Public view of :func:`m_basis_labels` as :class:`Partition` objects."""
    return [Partition(universe, labels) for labels in m_basis_labels(succ)]


def mm_pairs(succ: SuccTable, universe: Sequence) -> List[Tuple[Partition, Partition]]:
    """All Mm-pairs ``(pi, theta)`` of the machine, for small machines.

    Enumerates the closure of the basis under joins (the "m sides"), then
    pairs each ``theta`` with ``pi = M(theta)`` and keeps those where
    ``m(pi) == theta``.  The trivial identity m-side is included, since
    ``(M(identity), identity)`` can be a legitimate Mm-pair.
    """
    n = len(succ)
    kern = kernel.bitset_kernel(succ)
    basis = m_basis_labels(succ)
    closed: Set[Labels] = {kernel.identity(n)}
    frontier: List[Labels] = list(closed)
    while frontier:
        current = frontier.pop()
        for element in basis:
            joined = kern.join_labels(current, element)
            if joined not in closed:
                closed.add(joined)
                frontier.append(joined)
    out = []
    for theta in sorted(closed):
        pi = kern.big_m_labels(theta)
        if kern.m_labels(pi) == theta:
            out.append((Partition(universe, pi), Partition(universe, theta)))
    return out
