"""Plain-text table formatting in the paper's style.

Shared by the benchmark harness, the CLI, and the examples, so every
surface prints Table 1 / Table 2 the same way.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: Optional[str] = None,
    align_left: Sequence[int] = (0,),
) -> str:
    """Render an ASCII table; column 0 is left-aligned by default."""
    text_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    all_rows = [list(headers)] + text_rows
    n_columns = max(len(row) for row in all_rows)
    for row in all_rows:
        row.extend([""] * (n_columns - len(row)))
    widths = [max(len(row[c]) for row in all_rows) for c in range(n_columns)]

    def render(row: Sequence[str]) -> str:
        cells = []
        for c, cell in enumerate(row):
            if c in align_left:
                cells.append(cell.ljust(widths[c]))
            else:
                cells.append(cell.rjust(widths[c]))
        return "  ".join(cells).rstrip()

    separator = "-" * (sum(widths) + 2 * (n_columns - 1))
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(separator) if len(title) > len(separator) else separator)
    lines.append(render(headers))
    lines.append(separator)
    lines.extend(render(row) for row in text_rows)
    return "\n".join(lines)


def format_percent(fraction: float) -> str:
    return f"{100.0 * fraction:.1f}%"


def flag(value: bool, mark: str = "*") -> str:
    """The paper marks timed-out rows with ``*``."""
    return mark if value else ""
