"""Registry-driven sweep harness: synthesis→BIST campaigns over the corpus.

A *sweep* runs the full pipeline (OSTR search → architecture build →
fault-simulation campaign) over a selection of corpus members
(:mod:`repro.suite.corpus`) and emits the reproducibility artifact
pattern, with no hand-edited numbers anywhere:

``manifest.json``
    environment capture, the complete sweep configuration, the SHA-256
    corpus ledger (per-member hashes plus generator specs, so generated
    members rebuild from the manifest alone), and the metrics ledger.
``metrics.jsonl``
    one JSON record per machine: corpus identity, synthesis result,
    coverage, collapse reduction, and (optionally) wall-clock timings.
    Every record has a *canonical form* -- the record minus the ``wall``
    and ``telemetry`` keys (run configuration, not subject facts),
    serialised with sorted keys -- and the manifest pins the SHA-256
    over all canonical lines.  Re-running a sweep from its manifest's
    seeds reproduces the canonical content bit-identically; with timings
    disabled and matching engine knobs the file itself is byte-identical.
``summary.json``
    aggregates over the run (coverage distribution, exact/inexact search
    counts, collapse reduction, failures).

Work shards across CI cells with the corpus's stable member sharding; the
campaigns run through the existing engine stack (``CampaignPool``,
chunk-steal workers, collapse, resilience) -- all of which guarantee
bit-identical reports, which is what makes the ledger meaningful.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..exceptions import ReproError
from . import corpus as corpus_mod

MANIFEST_FORMAT = "repro-sweep/1"
METRICS_NAME = "metrics.jsonl"
MANIFEST_NAME = "manifest.json"
SUMMARY_NAME = "summary.json"

_ARCHITECTURES = ("pipeline", "conventional")


@dataclass(frozen=True)
class SweepConfig:
    """Everything that determines a sweep's deterministic output.

    All fields are JSON-able; the manifest embeds ``to_dict()`` and
    :meth:`from_dict` rebuilds the exact configuration for reproduction.
    ``workers``/``pool`` are wall-clock knobs: the campaign engine
    guarantees bit-identical reports across schedulers, so they may be
    changed on re-run without perturbing the metrics ledger.
    """

    families: Optional[Sequence[str]] = None  # None = whole corpus
    limit: Optional[int] = None  # per-family member cap
    shard_index: int = 0
    shard_count: int = 1
    architecture: str = "pipeline"  # "pipeline" | "conventional"
    coverage: bool = True
    cycles: Optional[int] = None
    seed: int = 1  # campaign seed (session randomisation)
    node_limit: Optional[int] = 200_000
    basis_order: str = "sorted"
    collapse: str = "equiv"
    prescreen: str = "none"
    workers: int = 0
    pool: int = 0
    record_timings: bool = True

    def __post_init__(self):
        if self.architecture not in _ARCHITECTURES:
            raise ReproError(
                f"unknown architecture {self.architecture!r}; "
                f"choose from {_ARCHITECTURES}"
            )
        from ..faults.coverage import PRESCREEN_MODES

        if self.prescreen not in PRESCREEN_MODES:
            raise ReproError(
                f"unknown prescreen mode {self.prescreen!r}; "
                f"choose from {PRESCREEN_MODES}"
            )
        if self.limit is not None and self.limit < 0:
            raise ReproError(f"limit must be >= 0, got {self.limit}")
        if self.shard_count < 1 or not (0 <= self.shard_index < self.shard_count):
            raise ReproError(
                f"invalid shard {self.shard_index}/{self.shard_count}: "
                f"need 0 <= index < count (the CLI takes 1-based I/N)"
            )

    def to_dict(self) -> Dict[str, object]:
        payload = dataclasses.asdict(self)
        payload["families"] = (
            list(self.families) if self.families is not None else None
        )
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepConfig":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ReproError(f"unknown sweep config fields: {unknown}")
        kwargs = dict(payload)
        if kwargs.get("families") is not None:
            kwargs["families"] = tuple(kwargs["families"])
        return cls(**kwargs)


@dataclass
class SweepResult:
    """Handle on a finished sweep's artifacts."""

    out_dir: str
    manifest: Dict[str, object]
    summary: Dict[str, object]

    @property
    def records(self) -> int:
        return self.manifest["metrics"]["records"]

    @property
    def canonical_sha256(self) -> str:
        return self.manifest["metrics"]["canonical_sha256"]


def canonical_record(record: Mapping) -> str:
    """A record's canonical line: keys sorted, compact, run-specific
    fields stripped.

    ``wall`` (timings) and ``telemetry`` (collapse/prescreen campaign
    stats) describe *how* a record was computed, not *what* was measured
    -- the same member swept with ``prescreen="static"`` and
    ``prescreen="validate"`` must hash identically, like re-runs with
    different worker counts do.  The ``static`` analysis block, by
    contrast, is a pure function of the controller and stays canonical.
    """
    clean = {
        key: value
        for key, value in record.items()
        if key not in ("wall", "telemetry")
    }
    return json.dumps(clean, sort_keys=True, separators=(",", ":"))


def _canonical_digest(records: Sequence[Mapping]) -> str:
    text = "\n".join(canonical_record(record) for record in records)
    return hashlib.sha256((text + "\n").encode("utf-8")).hexdigest()


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


def _corpus_ledger_digest(member_records: Sequence[Mapping]) -> str:
    lines = [f"{record['id']} {record['sha256']}" for record in member_records]
    return hashlib.sha256(("\n".join(lines) + "\n").encode("utf-8")).hexdigest()


def _static_block(controller) -> Dict[str, object]:
    """Canonical static-analysis block of one controller's metrics record.

    Pure function of the controller's netlist structure -- verifier
    diagnostic tallies per block plus the untestability-prover verdict
    tally over the full fault universe -- so it belongs in the canonical
    ledger and reproduces bit-identically from a manifest's seeds.
    """
    from ..analysis.structure import verify
    from ..analysis.untestable import prove_controller

    blocks: Dict[str, object] = {}
    for block, netlist in sorted(
        (getattr(controller, "fault_blocks", dict)() or {}).items()
    ):
        if netlist is None:
            continue
        report = verify(netlist)
        blocks[block] = {
            "counts": report.counts(),
            "by_code": report.by_code(),
        }
    verdicts = prove_controller(controller)
    by_verdict: Dict[str, int] = {}
    for verdict in verdicts:
        if verdict.is_untestable:
            by_verdict[verdict.verdict] = by_verdict.get(verdict.verdict, 0) + 1
    return {
        "structure": blocks,
        "untestable": {
            "universe": len(verdicts),
            "proved": sum(by_verdict.values()),
            "by_verdict": dict(sorted(by_verdict.items())),
        },
    }


def sweep_member(
    member, config: SweepConfig, pool=None, checkpoint: Optional[str] = None
) -> Dict[str, object]:
    """Synthesis→BIST campaign on one corpus member; one metrics record.

    This is the unit of work shared by the in-process sweep loop and the
    campaign service (:mod:`repro.service`): both produce *this* record
    for a given ``(member, config)``, which is why a sweep driven through
    the service is bit-identical to the in-process path -- the canonical
    metrics ledger is a pure function of the member and the deterministic
    config fields, never of who ran the campaign.  ``member`` is anything
    with the :class:`~repro.suite.corpus.CorpusMember` duck surface
    (``member_id``/``family``/``name``/``kind``/``build()``/``sha256()``).
    ``checkpoint`` names a crash-safe campaign snapshot file (see
    :class:`~repro.faults.checkpoint.CampaignCheckpoint`): like the
    wall-clock knobs it cannot change the record -- resume is
    bit-identical -- it only lets an interrupted campaign avoid
    recomputing finished fault outcomes.
    """
    from ..bist import build_conventional_bist, build_pipeline
    from ..faults import measure_coverage
    from ..faults.engine import campaign_telemetry
    from ..ostr import conventional_bist_flipflops, search_ostr

    record: Dict[str, object] = {
        "id": member.member_id,
        "family": member.family,
        "name": member.name,
        "kind": member.kind,
    }
    wall: Dict[str, float] = {}
    try:
        machine = member.build()
        record["sha256"] = member.sha256()
        record["n_states"] = machine.n_states
        record["n_inputs"] = machine.n_inputs
        record["n_outputs"] = machine.n_outputs

        start = time.perf_counter()
        result = search_ostr(
            machine,
            node_limit=config.node_limit,
            basis_order=config.basis_order,
        )
        wall["synth_s"] = round(time.perf_counter() - start, 4)
        solution = result.solution
        record["synthesis"] = {
            "s1": max(solution.k1, solution.k2),
            "s2": min(solution.k1, solution.k2),
            "flipflops": solution.flipflops,
            "conventional_ff": conventional_bist_flipflops(machine.n_states),
            "nontrivial": max(solution.k1, solution.k2) < machine.n_states,
            "exact": result.exact,
            "investigated": result.stats.investigated,
            "basis_size": result.stats.basis_size,
        }

        if config.coverage:
            if config.architecture == "pipeline":
                controller = build_pipeline(result.realization())
            else:
                controller = build_conventional_bist(machine)
            start = time.perf_counter()
            report = measure_coverage(
                controller,
                cycles=config.cycles,
                seed=config.seed,
                workers=config.workers,
                dropping=True,
                pool=pool,
                collapse=config.collapse,
                prescreen=config.prescreen,
                checkpoint=checkpoint,
            )
            wall["coverage_s"] = round(time.perf_counter() - start, 4)
            record["coverage"] = {
                "architecture": config.architecture,
                "total": report.total,
                "detected": report.detected,
                "coverage": round(report.coverage, 6),
                "by_block": {
                    block: list(counts)
                    for block, counts in sorted(report.by_block.items())
                },
            }
            # The collapse/prescreen telemetry slices are deterministic
            # per config but config-dependent, so canonical_record strips
            # them (like wall): the ledger must not change when a sweep
            # merely *schedules* differently.  Worker counts / drop
            # tallies vary with wall-clock knobs and are excluded by
            # campaign_telemetry() itself.
            telemetry = campaign_telemetry()
            record["telemetry"] = {
                "collapse": telemetry["collapse"],
                "prescreen": telemetry["prescreen"],
            }
            record["static"] = _static_block(controller)
        record["status"] = "ok"
    except ReproError as error:
        record["status"] = "error"
        record["error"] = f"{type(error).__name__}: {error}"
    if config.record_timings:
        record["wall"] = wall
    return record


def _summarize(
    records: Sequence[Mapping], config: SweepConfig, elapsed: Optional[float]
) -> Dict[str, object]:
    ok = [r for r in records if r.get("status") == "ok"]
    errors = [r for r in records if r.get("status") != "ok"]
    families: Dict[str, int] = {}
    for record in records:
        families[record["family"]] = families.get(record["family"], 0) + 1

    summary: Dict[str, object] = {
        "machines": len(records),
        "ok": len(ok),
        "errors": len(errors),
        "error_ids": [r["id"] for r in errors],
        "families": families,
        "shard": {"index": config.shard_index, "count": config.shard_count},
    }
    synthesized = [r for r in ok if "synthesis" in r]
    if synthesized:
        summary["synthesis"] = {
            "exact": sum(1 for r in synthesized if r["synthesis"]["exact"]),
            "inexact": sum(1 for r in synthesized if not r["synthesis"]["exact"]),
            "nontrivial": sum(
                1 for r in synthesized if r["synthesis"]["nontrivial"]
            ),
        }
    covered = [r for r in ok if "coverage" in r]
    if covered:
        total = sum(r["coverage"]["total"] for r in covered)
        detected = sum(r["coverage"]["detected"] for r in covered)
        worst = min(covered, key=lambda r: (r["coverage"]["coverage"], r["id"]))
        summary["coverage"] = {
            "total_faults": total,
            "total_detected": detected,
            "mean_coverage": round(
                sum(r["coverage"]["coverage"] for r in covered) / len(covered), 6
            ),
            "min_coverage": worst["coverage"]["coverage"],
            "min_coverage_id": worst["id"],
        }
        reductions = [
            r["telemetry"]["collapse"]["reduction"]
            for r in covered
            if r.get("telemetry", {}).get("collapse")
        ]
        if reductions:
            summary["collapse"] = {
                "mean_reduction": round(sum(reductions) / len(reductions), 4),
            }
    if elapsed is not None:
        summary["elapsed_s"] = round(elapsed, 2)
    return summary


def _service_records(
    service: str, members, config: SweepConfig, progress=None
) -> List[Dict[str, object]]:
    """Run the sweep's member jobs through a live campaign service.

    Submits one job per member (admission-control-aware batching) and
    reassembles the finished records *in member order*, so the metrics
    file written from them is bit-identical to the in-process loop's.
    A job that failed without producing a record (an unexpected server
    exception, not a structured campaign error) aborts the sweep --
    silently dropping a member would corrupt the ledger.
    """
    from ..service.client import ServiceClient

    client = ServiceClient(service)
    jobs = [
        {"member": member.to_manifest(), "config": config.to_dict()}
        for member in members
    ]
    finished = client.run_batch(jobs)
    records: List[Dict[str, object]] = []
    for index, job in enumerate(finished):
        record = job.get("record")
        if record is None:
            raise ReproError(
                f"service job {job.get('job')} for {members[index].member_id} "
                f"ended {job.get('state')!r} without a metrics record: "
                f"{job.get('error')}"
            )
        records.append(record)
        if progress is not None:
            progress(index, len(members), record)
    return records


def run_sweep(
    config: SweepConfig,
    out_dir: str,
    members=None,
    progress=None,
    service: Optional[str] = None,
) -> SweepResult:
    """Run a sweep and write ``manifest.json``/``metrics.jsonl``/``summary.json``.

    ``members`` overrides corpus selection (the reproduction path passes
    the manifest's own member list so nothing depends on the current
    registry); ``progress`` is an optional ``callable(index, total,
    record)`` for CLI reporting.  ``service`` routes the campaigns
    through a running campaign service (:mod:`repro.service`) at that
    URL instead of this process -- the artifacts are identical either
    way (with timings disabled, byte-identical).
    """
    if members is None:
        members = corpus_mod.members(
            family_filter=config.families,
            limit=config.limit,
            shard_index=config.shard_index,
            shard_count=config.shard_count,
        )
    os.makedirs(out_dir, exist_ok=True)

    member_records = [member.to_manifest() for member in members]

    started = time.perf_counter()
    metrics_path = os.path.join(out_dir, METRICS_NAME)
    if service is not None:
        records = _service_records(service, members, config, progress)
        with open(metrics_path, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(
                    json.dumps(record, sort_keys=True, separators=(",", ":"))
                    + "\n"
                )
    else:
        pool = None
        if config.pool:
            from ..faults.pool import CampaignPool

            pool = CampaignPool(config.pool)
        records = []
        try:
            with open(metrics_path, "w", encoding="utf-8") as handle:
                for index, member in enumerate(members):
                    record = sweep_member(member, config, pool)
                    records.append(record)
                    handle.write(
                        json.dumps(record, sort_keys=True, separators=(",", ":"))
                        + "\n"
                    )
                    if progress is not None:
                        progress(index, len(members), record)
        finally:
            if pool is not None:
                pool.close()
    elapsed = time.perf_counter() - started

    summary = _summarize(
        records, config, elapsed if config.record_timings else None
    )
    with open(os.path.join(out_dir, SUMMARY_NAME), "w", encoding="utf-8") as handle:
        json.dump(summary, handle, indent=2, sort_keys=True)
        handle.write("\n")

    manifest: Dict[str, object] = {
        "format": MANIFEST_FORMAT,
        "environment": {
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
            "platform": platform.platform(),
        },
        "config": config.to_dict(),
        "corpus": {
            "count": len(member_records),
            "ledger_sha256": _corpus_ledger_digest(member_records),
            "members": member_records,
        },
        "metrics": {
            "path": METRICS_NAME,
            "records": len(records),
            "canonical_sha256": _canonical_digest(records),
            "file_sha256": _file_sha256(metrics_path),
        },
        "summary_path": SUMMARY_NAME,
    }
    if config.record_timings:
        # Deliberate wall-clock: the manifest's creation stamp is run
        # provenance, guarded by record_timings and outside every ledger
        # digest -- reproductions compare ledgers, not manifests.
        manifest["created_unix"] = round(time.time(), 2)  # repro-lint: disable=RL003
    with open(os.path.join(out_dir, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return SweepResult(out_dir=out_dir, manifest=manifest, summary=summary)


def load_manifest(path: str) -> Dict[str, object]:
    """Read a manifest file (or a run directory containing one)."""
    if os.path.isdir(path):
        path = os.path.join(path, MANIFEST_NAME)
    try:
        with open(path, encoding="utf-8") as handle:
            manifest = json.load(handle)
    except OSError as exc:
        raise ReproError(f"cannot read manifest: {exc}") from exc
    except ValueError as exc:
        raise ReproError(f"malformed manifest {path!r}: {exc}") from exc
    if manifest.get("format") != MANIFEST_FORMAT:
        raise ReproError(
            f"unsupported manifest format {manifest.get('format')!r} "
            f"(expected {MANIFEST_FORMAT!r})"
        )
    return manifest


def verify_run(run_dir: str) -> Dict[str, object]:
    """Check a finished run against its own manifest ledger.

    Recomputes every corpus member hash (file bytes for kiss members,
    regenerated canonical dumps for generated members) and the metrics
    file/canonical digests.  Returns ``{"ok": bool, "mismatches": [...],
    ...}``; any corruption of a corpus source, a metrics record, or the
    files themselves lands in ``mismatches``.
    """
    manifest = load_manifest(run_dir)
    mismatches: List[str] = []

    for record in manifest["corpus"]["members"]:
        member = corpus_mod.member_from_manifest(record)
        try:
            actual = member.sha256()
        except (OSError, ReproError) as exc:
            mismatches.append(f"corpus {member.member_id}: unreadable ({exc})")
            continue
        if actual != record["sha256"]:
            mismatches.append(
                f"corpus {member.member_id}: sha256 {actual[:12]}... != "
                f"ledger {record['sha256'][:12]}..."
            )
    ledger = _corpus_ledger_digest(manifest["corpus"]["members"])
    if ledger != manifest["corpus"]["ledger_sha256"]:
        mismatches.append("corpus ledger digest does not match the member list")

    metrics_meta = manifest["metrics"]
    metrics_path = os.path.join(run_dir, metrics_meta["path"])
    if not os.path.exists(metrics_path):
        mismatches.append(f"metrics file missing: {metrics_meta['path']}")
    else:
        if _file_sha256(metrics_path) != metrics_meta["file_sha256"]:
            mismatches.append("metrics file sha256 does not match the manifest")
        records = []
        try:
            with open(metrics_path, encoding="utf-8") as handle:
                for line in handle:
                    if line.strip():
                        records.append(json.loads(line))
        except ValueError as exc:
            mismatches.append(f"metrics file has a malformed record: {exc}")
            records = None
        if records is not None:
            if len(records) != metrics_meta["records"]:
                mismatches.append(
                    f"metrics records: {len(records)} != manifest "
                    f"{metrics_meta['records']}"
                )
            if _canonical_digest(records) != metrics_meta["canonical_sha256"]:
                mismatches.append(
                    "metrics canonical ledger does not match the manifest"
                )

    return {
        "ok": not mismatches,
        "members": manifest["corpus"]["count"],
        "records": metrics_meta["records"],
        "mismatches": mismatches,
    }


def reproduce_run(manifest_path: str, out_dir: str) -> Dict[str, object]:
    """Re-run a sweep from its manifest alone; compare the metrics ledgers.

    The member list comes from the manifest's corpus ledger (generated
    members rebuild from their embedded specs; kiss members re-hash their
    sources first, so a drifted corpus file fails loudly instead of
    silently producing different metrics).  Returns the comparison; the
    canonical ledgers must match for ``identical`` to be true, and when
    the original recorded no timings the files are byte-identical too.
    """
    manifest = load_manifest(manifest_path)
    config = SweepConfig.from_dict(manifest["config"])
    members = []
    for record in manifest["corpus"]["members"]:
        member = corpus_mod.member_from_manifest(record)
        actual = member.sha256()
        if actual != record["sha256"]:
            raise ReproError(
                f"corpus member {member.member_id} drifted since the manifest "
                f"was written: sha256 {actual[:12]}... != ledger "
                f"{record['sha256'][:12]}...; reproduction would not be "
                "comparing like with like"
            )
        members.append(member)
    result = run_sweep(config, out_dir, members=members)
    identical = (
        result.canonical_sha256 == manifest["metrics"]["canonical_sha256"]
    )
    return {
        "identical": identical,
        "records": result.records,
        "canonical_sha256": result.canonical_sha256,
        "expected_sha256": manifest["metrics"]["canonical_sha256"],
        "out_dir": out_dir,
    }
