"""The benchmark corpus: KISS2 families on disk + generated populations.

The Table-1 suite (:mod:`repro.suite.registry`) is 13 machines; the corpus
scales validation to population size.  It is organised as *families*:

* **KISS families** are directories of ``.kiss2`` sources under the
  ``corpus/`` tree at the repo root (``mcnc`` hand-written classics,
  ``table1`` the registry stand-ins serialised through
  :mod:`repro.fsm.kiss`), parsed on load.  Their ledger identity is the
  SHA-256 of the file bytes.
* **Generated families** are seeded populations (hundreds of machines via
  :mod:`repro.fsm.random_machines` and the planted-structure generators)
  that exist only as JSON-able specs: every member is reconstructible from
  its ``{"generator": ..., **params}`` spec alone through
  :func:`repro.suite.registry.build_from_spec`, so sweep manifests embed
  the specs and a re-run needs no repository state at all.  Their ledger
  identity is the SHA-256 of the machine's canonical KISS2 serialisation.

Members are deterministically ordered (families in registration order,
members in name order) and shard stably across CI cells via
:func:`shard_of` (SHA-256 of the member id, independent of Python's
per-process hash seed).
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ReproError
from ..fsm import MealyMachine, kiss
from .generators import PlantedMachine
from .registry import build_from_spec

CORPUS_ENV = "REPRO_CORPUS_ROOT"

# Population sizes (committed contract: the sharded golden corpus pins
# every member, so growing a family is a golden update, not a drift).
POP_SMALL = 360
POP_MEDIUM = 120
POP_STRUCTURED = 40
SEQUENTIAL_BITS = (2, 3, 4, 5)

# Planted shapes for the structured population: (k1, k2, n_states) with
# max(k1, k2) <= n_states <= k1 * k2, cycled over the member index.
_STRUCTURED_SHAPES = (
    (2, 2, 4),
    (2, 3, 5),
    (2, 3, 6),
    (3, 3, 6),
    (3, 3, 7),
    (2, 4, 7),
    (3, 3, 8),
    (2, 4, 8),
)


def corpus_root() -> str:
    """The ``corpus/`` tree (repo root by default, ``REPRO_CORPUS_ROOT`` wins)."""
    override = os.environ.get(CORPUS_ENV)
    if override:
        return override
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.normpath(os.path.join(here, "..", "..", "..", "corpus"))


def canonical_sha256(machine: MealyMachine) -> str:
    """Content hash of a machine: SHA-256 of its canonical KISS2 text.

    This is the ledger identity of generated corpus members -- stable
    across processes, platforms, and hash seeds, and sensitive to every
    transition, symbol, and the reset state.
    """
    return hashlib.sha256(kiss.dumps(machine).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class CorpusMember:
    """One machine of the corpus, reconstructible from its ``spec``.

    ``kind == "kiss"`` members carry ``{"path": <relative path>}`` specs
    resolved against :func:`corpus_root`; ``kind == "generated"`` members
    carry generator specs for :func:`~repro.suite.registry.build_from_spec`.
    """

    family: str
    name: str
    kind: str  # "kiss" | "generated"
    spec: Mapping

    @property
    def member_id(self) -> str:
        return f"{self.family}/{self.name}"

    @property
    def path(self) -> Optional[str]:
        if self.kind != "kiss":
            return None
        return os.path.join(corpus_root(), *str(self.spec["path"]).split("/"))

    def build(self) -> MealyMachine:
        """Parse (kiss) or regenerate (generated) the member's machine."""
        if self.kind == "kiss":
            return kiss.load(self.path, name=self.name)
        if self.kind == "generated":
            built = build_from_spec(self.spec)
            if isinstance(built, PlantedMachine):
                return built.machine
            return built
        raise ReproError(f"unknown corpus member kind {self.kind!r}")

    def sha256(self) -> str:
        """Ledger hash: file bytes for kiss members, canonical dump otherwise."""
        if self.kind == "kiss":
            with open(self.path, "rb") as handle:
                return hashlib.sha256(handle.read()).hexdigest()
        return canonical_sha256(self.build())

    def to_manifest(self) -> Dict[str, object]:
        """The manifest/ledger record (everything a re-run needs)."""
        return {
            "id": self.member_id,
            "family": self.family,
            "name": self.name,
            "kind": self.kind,
            "spec": dict(self.spec),
            "sha256": self.sha256(),
        }


def member_from_manifest(record: Mapping) -> CorpusMember:
    """Rebuild a member from its manifest record (reproduction path)."""
    return CorpusMember(
        family=str(record["family"]),
        name=str(record["name"]),
        kind=str(record["kind"]),
        spec=dict(record["spec"]),
    )


@dataclass(frozen=True)
class CorpusFamily:
    """A named group of corpus members sharing provenance."""

    name: str
    kind: str  # "kiss" | "generated"
    description: str
    members: Tuple[CorpusMember, ...]

    def __len__(self) -> int:
        return len(self.members)


def _kiss_family(name: str, description: str) -> CorpusFamily:
    directory = os.path.join(corpus_root(), name)
    members = []
    if os.path.isdir(directory):
        for filename in sorted(os.listdir(directory)):
            if not filename.endswith(".kiss2"):
                continue
            members.append(
                CorpusMember(
                    family=name,
                    name=filename[: -len(".kiss2")],
                    kind="kiss",
                    spec={"path": f"{name}/{filename}"},
                )
            )
    return CorpusFamily(name, "kiss", description, tuple(members))


def _generated_family(name, description, specs) -> CorpusFamily:
    members = tuple(
        CorpusMember(family=name, name=str(spec["name"]), kind="generated", spec=spec)
        for spec in specs
    )
    return CorpusFamily(name, "generated", description, members)


def _sequential_specs() -> List[Dict]:
    return [
        {"generator": "shift_register", "n_bits": bits, "name": f"shiftreg{bits}"}
        for bits in SEQUENTIAL_BITS
    ]


def _pop_small_specs() -> List[Dict]:
    return [
        {
            "generator": "random_mealy",
            "n_states": 3 + (k % 6),
            "n_inputs": 2,
            "n_outputs": 2,
            "seed": 1000 + k,
            "name": f"ps{k:04d}",
            "ensure_connected": True,
            "ensure_reduced": True,
        }
        for k in range(POP_SMALL)
    ]


def _pop_medium_specs() -> List[Dict]:
    return [
        {
            "generator": "random_mealy",
            "n_states": 9 + (k % 6),
            "n_inputs": 2,
            "n_outputs": 3,
            "seed": 5000 + k,
            "name": f"pm{k:04d}",
            "ensure_connected": True,
            "ensure_reduced": True,
        }
        for k in range(POP_MEDIUM)
    ]


def _pop_structured_specs() -> List[Dict]:
    specs = []
    for k in range(POP_STRUCTURED):
        k1, k2, n_states = _STRUCTURED_SHAPES[k % len(_STRUCTURED_SHAPES)]
        specs.append(
            {
                "generator": "grid_embedded",
                "k1": k1,
                "k2": k2,
                "n_states": n_states,
                "n_inputs": 2,
                "n_outputs": 2,
                "seed": 9000 + k,
                "name": f"gx{k:04d}",
            }
        )
    return specs


def families() -> Dict[str, CorpusFamily]:
    """All corpus families, in registration order (the corpus order)."""
    family_list = [
        _kiss_family(
            "mcnc",
            "hand-written fully specified classics (MCNC-style shapes)",
        ),
        _kiss_family(
            "table1",
            "the Table-1 registry stand-ins serialised as KISS2",
        ),
        _generated_family(
            "sequential",
            "serial shift registers of growing width",
            _sequential_specs(),
        ),
        _generated_family(
            "pop-small",
            f"{POP_SMALL} random reduced machines, 3-8 states",
            _pop_small_specs(),
        ),
        _generated_family(
            "pop-medium",
            f"{POP_MEDIUM} random reduced machines, 9-14 states",
            _pop_medium_specs(),
        ),
        _generated_family(
            "pop-structured",
            f"{POP_STRUCTURED} planted grid embeddings (nontrivial OSTR)",
            _pop_structured_specs(),
        ),
    ]
    return {family.name: family for family in family_list}


def family_names() -> List[str]:
    return list(families())


def members(
    family_filter: Optional[Sequence[str]] = None,
    limit: Optional[int] = None,
    shard_index: int = 0,
    shard_count: int = 1,
) -> List[CorpusMember]:
    """Corpus members in deterministic order, optionally filtered.

    ``family_filter`` selects families by name (corpus order preserved),
    ``limit`` caps members *per family* (deterministic prefix), and
    ``shard_index``/``shard_count`` keep only the members whose stable
    shard (:func:`shard_of`) matches -- the mechanism CI cells use to
    divide the corpus.
    """
    registry = families()
    if family_filter is None:
        selected = list(registry.values())
    else:
        unknown = sorted(set(family_filter) - set(registry))
        if unknown:
            raise ReproError(
                f"unknown corpus families {unknown}; available: {list(registry)}"
            )
        selected = [registry[name] for name in registry if name in set(family_filter)]
    if limit is not None and limit < 0:
        # A negative limit would silently slice members off the *end* of
        # each family (Python slicing semantics) -- an easy way to sweep
        # 11 of 12 machines while believing you swept them all.
        raise ReproError(f"limit must be >= 0, got {limit}")
    if shard_count < 1 or not (0 <= shard_index < shard_count):
        raise ReproError(
            f"invalid shard {shard_index}/{shard_count}: need 0 <= index < count"
        )
    out: List[CorpusMember] = []
    for family in selected:
        chosen = family.members[: limit if limit is not None else len(family.members)]
        out.extend(
            member
            for member in chosen
            if shard_of(member.member_id, shard_count) == shard_index
        )
    return out


def shard_of(member_id: str, shard_count: int) -> int:
    """Stable shard assignment: SHA-256 of the member id, mod shard count."""
    if shard_count <= 1:
        return 0
    digest = hashlib.sha256(member_id.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % shard_count
