"""Benchmark suite: Table-1 stand-ins plus the industrial-scale corpus.

``shiftreg`` and the Figure-5 running example are exact reconstructions;
the remaining IWLS'93 machines are shape-matched synthetic substitutes
(see DESIGN.md, section 3).  Beyond Table 1, :mod:`repro.suite.corpus`
organises KISS2 benchmark families and seeded generated populations into
a ledgered corpus, and :mod:`repro.suite.sweep` runs synthesis→BIST
campaigns over it with reproducible manifests.
"""

from . import corpus
from .generators import (
    PlantedMachine,
    full_product,
    grid_embedded,
    paper_example,
    paper_example_pair,
    shift_register,
    two_coset,
    unstructured,
)
from .registry import (
    GENERATORS,
    PAPER_TABLE1,
    PaperRow,
    SuiteEntry,
    build_from_spec,
    entries,
    entry,
    load,
    load_paper_example,
    load_planted,
    names,
)

__all__ = [
    "corpus",
    "GENERATORS",
    "build_from_spec",
    "PlantedMachine",
    "grid_embedded",
    "full_product",
    "two_coset",
    "unstructured",
    "shift_register",
    "paper_example",
    "paper_example_pair",
    "PAPER_TABLE1",
    "PaperRow",
    "SuiteEntry",
    "entry",
    "entries",
    "names",
    "load",
    "load_planted",
    "load_paper_example",
]
