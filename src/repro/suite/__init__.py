"""Benchmark suite: stand-ins for the paper's Table-1 machines.

``shiftreg`` and the Figure-5 running example are exact reconstructions;
the remaining IWLS'93 machines are shape-matched synthetic substitutes
(see DESIGN.md, section 3).
"""

from .generators import (
    PlantedMachine,
    full_product,
    grid_embedded,
    paper_example,
    paper_example_pair,
    shift_register,
    two_coset,
    unstructured,
)
from .registry import (
    PAPER_TABLE1,
    PaperRow,
    SuiteEntry,
    entries,
    entry,
    load,
    load_paper_example,
    load_planted,
    names,
)

__all__ = [
    "PlantedMachine",
    "grid_embedded",
    "full_product",
    "two_coset",
    "unstructured",
    "shift_register",
    "paper_example",
    "paper_example_pair",
    "PAPER_TABLE1",
    "PaperRow",
    "SuiteEntry",
    "entry",
    "entries",
    "names",
    "load",
    "load_planted",
    "load_paper_example",
]
