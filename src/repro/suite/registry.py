"""The benchmark registry: one entry per row of the paper's Table 1.

Each entry records the paper's published numbers, a JSON-able generator
``spec`` describing how the stand-in machine is constructed (see DESIGN.md
section 3 for the substitution rationale), and the search options used by
the Table-1/Table-2 benches (the paper ran ``tbk`` under a time limit and
flagged the row with ``*``; we do the same through node limits so runs are
deterministic).

The ``spec`` dicts are the registry's contribution to the corpus layer
(:mod:`repro.suite.corpus`): because every machine is reconstructible from
its spec alone, sweep manifests can embed the specs and a re-run needs
nothing but the manifest to rebuild bit-identical machines.
:func:`build_from_spec` is the single dispatch point shared by the Table-1
suite, the generated corpus populations, and manifest reproduction.

Machines are cached after first construction; seeds are pinned so every
run of the suite sees identical machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..exceptions import ReproError
from ..fsm.random_machines import random_mealy
from .generators import (
    PlantedMachine,
    full_product,
    grid_embedded,
    paper_example,
    shift_register,
    two_coset,
    unstructured,
)

# Generator dispatch for JSON-able machine specs.  A spec is
# ``{"generator": <name>, **kwargs}``; everything else is passed to the
# generator verbatim, so a spec embedded in a sweep manifest reconstructs
# the exact machine (same pinned seed, same symbols) with no registry
# lookup at all.
GENERATORS = {
    "grid_embedded": grid_embedded,
    "full_product": full_product,
    "two_coset": two_coset,
    "unstructured": unstructured,
    "shift_register": shift_register,
    "random_mealy": random_mealy,
}


def build_from_spec(spec: Mapping):
    """Build a machine (or :class:`PlantedMachine`) from a generator spec."""
    params = dict(spec)
    try:
        generator = GENERATORS[params.pop("generator")]
    except KeyError as exc:
        raise ReproError(
            f"unknown generator in spec {dict(spec)!r}; "
            f"available: {sorted(GENERATORS)}"
        ) from exc
    return generator(**params)


@dataclass(frozen=True)
class PaperRow:
    """A row of Table 1 as published (our ground truth for the shape)."""

    name: str
    n_states: int
    s1: int
    s2: int
    conventional_ff: int
    pipeline_ff: int
    timeout: bool = False

    @property
    def nontrivial(self) -> bool:
        return self.s1 < self.n_states or self.s2 < self.n_states


@dataclass(frozen=True)
class SuiteEntry:
    """A benchmark machine with its paper row and bench configuration.

    ``spec`` is the JSON-able generator spec the machine is built from
    (via :func:`build_from_spec`); it doubles as the entry's corpus
    metadata, so `repro.suite.corpus` can expose the Table-1 suite as one
    corpus family and sweep manifests can pin it member by member.
    """

    name: str
    category: str  # "exact" | "planted" | "unstructured"
    description: str
    paper: PaperRow
    spec: Mapping  # JSON-able generator parameters (see build_from_spec)
    search_kwargs: Dict = field(default_factory=dict)

    def builder(self):
        """Construct the machine object described by ``spec``."""
        return build_from_spec(self.spec)

    def load(self):
        built = self.builder()
        if isinstance(built, PlantedMachine):
            return built.machine
        return built

    def load_planted(self) -> Optional[PlantedMachine]:
        built = self.builder()
        if isinstance(built, PlantedMachine):
            return built
        return None


PAPER_TABLE1: Tuple[PaperRow, ...] = (
    PaperRow("bbara", 10, 7, 7, 8, 6),
    PaperRow("bbtas", 6, 6, 6, 6, 6),
    PaperRow("dk14", 7, 7, 7, 6, 6),
    PaperRow("dk15", 4, 4, 4, 4, 4),
    PaperRow("dk16", 27, 24, 24, 10, 10),
    PaperRow("dk17", 8, 8, 8, 6, 6),
    PaperRow("dk27", 7, 6, 7, 6, 6),
    PaperRow("dk512", 15, 14, 15, 8, 8),
    PaperRow("mc", 4, 4, 4, 4, 4),
    PaperRow("s1", 20, 20, 20, 10, 10),
    PaperRow("shiftreg", 8, 4, 2, 6, 3),
    PaperRow("tav", 4, 2, 2, 4, 2),
    PaperRow("tbk", 32, 16, 16, 10, 8, timeout=True),
)

_ROWS = {row.name: row for row in PAPER_TABLE1}

# Seeds are pinned; the generators verify their own promises (planted pair
# is a symmetric Mm-pair with identity meet, machine strongly connected and
# reduced), so a successful import of this table is itself a sanity check.
_ENTRIES: Tuple[SuiteEntry, ...] = (
    SuiteEntry(
        "bbara",
        "planted",
        "shape-matched stand-in: 10 states embedded in a 7x7 grid",
        _ROWS["bbara"],
        {"generator": "grid_embedded", "k1": 7, "k2": 7, "n_states": 10,
         "n_inputs": 4, "n_outputs": 2, "seed": 11, "name": "bbara"},
    ),
    SuiteEntry(
        "bbtas",
        "unstructured",
        "shape-matched stand-in: random reduced machine, 6 states",
        _ROWS["bbtas"],
        {"generator": "unstructured", "n_states": 6, "n_inputs": 4,
         "n_outputs": 2, "seed": 21, "name": "bbtas"},
    ),
    SuiteEntry(
        "dk14",
        "unstructured",
        "shape-matched stand-in: random reduced machine, 7 states",
        _ROWS["dk14"],
        {"generator": "unstructured", "n_states": 7, "n_inputs": 8,
         "n_outputs": 5, "seed": 31, "name": "dk14"},
    ),
    SuiteEntry(
        "dk15",
        "unstructured",
        "shape-matched stand-in: random reduced machine, 4 states",
        _ROWS["dk15"],
        {"generator": "unstructured", "n_states": 4, "n_inputs": 8,
         "n_outputs": 5, "seed": 41, "name": "dk15"},
    ),
    SuiteEntry(
        "dk16",
        "planted",
        "shape-matched stand-in: 27 states embedded in a 24x24 grid",
        _ROWS["dk16"],
        {"generator": "grid_embedded", "k1": 24, "k2": 24, "n_states": 27,
         "n_inputs": 3, "n_outputs": 3, "seed": 18, "max_tries": 2000,
         "name": "dk16"},
        # The full pruned tree for this stand-in has ~5M nodes; the bench
        # runs under a node limit so Table-1 sweeps stay seconds-scale,
        # and the exhausted tree's exact stats are pinned by the
        # REPRO_GOLDEN_HEAVY-gated golden in tests/test_table1_golden.py
        # (tests/golden/ostr_table1_full_dk16.json): same (24,24)
        # solution, no surprises past the limit.  "fine_first" ordering
        # reaches the planted factorisation early (see the ablation
        # bench).
        search_kwargs={"node_limit": 400_000, "basis_order": "fine_first"},
    ),
    SuiteEntry(
        "dk17",
        "unstructured",
        "shape-matched stand-in: random reduced machine, 8 states",
        _ROWS["dk17"],
        {"generator": "unstructured", "n_states": 8, "n_inputs": 4,
         "n_outputs": 3, "seed": 61, "name": "dk17"},
    ),
    SuiteEntry(
        "dk27",
        "planted",
        "shape-matched stand-in: 7 states embedded in a 6x7 grid",
        _ROWS["dk27"],
        {"generator": "grid_embedded", "k1": 6, "k2": 7, "n_states": 7,
         "n_inputs": 2, "n_outputs": 2, "seed": 71, "name": "dk27"},
    ),
    SuiteEntry(
        "dk512",
        "planted",
        "shape-matched stand-in: 15 states embedded in a 14x15 grid",
        _ROWS["dk512"],
        {"generator": "grid_embedded", "k1": 14, "k2": 15, "n_states": 15,
         "n_inputs": 2, "n_outputs": 3, "seed": 81, "name": "dk512"},
        search_kwargs={"node_limit": 400_000},
    ),
    SuiteEntry(
        "mc",
        "unstructured",
        "shape-matched stand-in: random reduced machine, 4 states",
        _ROWS["mc"],
        {"generator": "unstructured", "n_states": 4, "n_inputs": 8,
         "n_outputs": 5, "seed": 91, "name": "mc"},
    ),
    SuiteEntry(
        "s1",
        "unstructured",
        "shape-matched stand-in: random reduced machine, 20 states",
        _ROWS["s1"],
        {"generator": "unstructured", "n_states": 20, "n_inputs": 8,
         "n_outputs": 6, "seed": 101, "name": "s1"},
        search_kwargs={"node_limit": 400_000},
    ),
    SuiteEntry(
        "shiftreg",
        "exact",
        "exact reconstruction: 3-bit serial shift register",
        _ROWS["shiftreg"],
        {"generator": "shift_register", "n_bits": 3, "name": "shiftreg"},
    ),
    SuiteEntry(
        "tav",
        "planted",
        "shape-matched stand-in: full 2x2 product machine",
        _ROWS["tav"],
        {"generator": "full_product", "k1": 2, "k2": 2, "n_inputs": 4,
         "n_outputs": 4, "seed": 111, "name": "tav"},
    ),
    SuiteEntry(
        "tbk",
        "planted",
        "shape-matched stand-in: 32 states embedded in a 16x16 grid "
        "(searched under a node limit, like the paper's timeout)",
        _ROWS["tbk"],
        {"generator": "two_coset", "k": 16, "n_inputs": 4, "n_outputs": 3,
         "seed": 7, "name": "tbk"},
        search_kwargs={"node_limit": 120_000},
    ),
)

_BY_NAME = {entry.name: entry for entry in _ENTRIES}
_MACHINE_CACHE: Dict[str, object] = {}


def entry(name: str) -> SuiteEntry:
    """The suite entry for a Table-1 benchmark name."""
    try:
        return _BY_NAME[name]
    except KeyError as exc:
        raise ReproError(
            f"unknown benchmark {name!r}; available: {sorted(_BY_NAME)}"
        ) from exc


def names() -> List[str]:
    """All benchmark names, in Table-1 order."""
    return [suite_entry.name for suite_entry in _ENTRIES]


def entries() -> Tuple[SuiteEntry, ...]:
    """All suite entries, in Table-1 order."""
    return _ENTRIES


def _built(name: str):
    if name not in _MACHINE_CACHE:
        _MACHINE_CACHE[name] = entry(name).builder()
    return _MACHINE_CACHE[name]


def load(name: str):
    """Load (and cache) a benchmark machine by name."""
    built = _built(name)
    if isinstance(built, PlantedMachine):
        return built.machine
    return built


def load_planted(name: str) -> Optional[PlantedMachine]:
    """Load the planted decomposition, if this benchmark has one."""
    built = _built(name)
    return built if isinstance(built, PlantedMachine) else None


def load_paper_example():
    """The Figure-5 running example (not part of Table 1)."""
    return paper_example()
