"""Benchmark machine constructions.

Three families, matching the substitution plan in DESIGN.md:

* **Exact reconstructions** -- the paper's running example (Figure 5) and
  the ``shiftreg`` benchmark (a 3-bit shift register by definition).
* **Planted-decomposition machines** -- ``grid_embedded`` plants a
  symmetric partition pair with chosen factor sizes ``(k1, k2)`` into a
  machine with ``n <= k1*k2`` states: states are an injective subset
  ``T ⊆ [k1] x [k2]`` closed under cross-coupled dynamics
  ``(p, q) --i--> (g_i(q), f_i(p))``.  The row/column kernels then form a
  symmetric partition pair with identity intersection by construction.
  ``full_product`` is the special case ``T = [k1] x [k2]``.
* **Unstructured machines** -- strongly connected reduced random machines,
  which almost surely admit only the trivial OSTR solution; these stand in
  for the benchmarks where the paper reports no nontrivial factorisation.

All generators are deterministic in ``seed`` and verify their own promises
(planted pair really is a symmetric Mm-pair with identity meet; machine is
strongly connected and reduced), retrying internal random draws until the
promises hold.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import FsmError
from ..fsm import MealyMachine, is_reduced, is_strongly_connected, random_mealy
from ..partitions import Partition
from ..partitions import kernel


@dataclass(frozen=True)
class PlantedMachine:
    """A machine together with the symmetric partition pair planted in it."""

    machine: MealyMachine
    pi: Partition      # row kernel: |S/pi| = k1
    theta: Partition   # column kernel: |S/theta| = k2


def paper_example() -> MealyMachine:
    """The running example of the paper (Figure 5), OCR-corrected.

    The published table is internally consistent with Figures 6-8 once the
    entry ``delta(2, 1)`` reads ``2/0`` (states ``1..4``, inputs ``1``/``0``):

    ========  =======  =======
     state     i = 1    i = 0
    ========  =======  =======
       1        3/1      1/1
       2        2/0      4/0
       3        1/1      3/0
       4        4/0      2/1
    ========  =======  =======

    Its symmetric partition pair ``pi = {{1,2},{3,4}}``,
    ``theta = {{1,4},{2,3}}`` reproduces Figure 6, and the induced factor
    tables reproduce Figure 7 exactly (see the tests and the figure bench).
    """
    transitions = {
        ("1", "1"): ("3", "1"),
        ("1", "0"): ("1", "1"),
        ("2", "1"): ("2", "0"),
        ("2", "0"): ("4", "0"),
        ("3", "1"): ("1", "1"),
        ("3", "0"): ("3", "0"),
        ("4", "1"): ("4", "0"),
        ("4", "0"): ("2", "1"),
    }
    return MealyMachine(
        "paper_example",
        states=("1", "2", "3", "4"),
        inputs=("1", "0"),
        outputs=("1", "0"),
        transitions=transitions,
        reset_state="1",
    )


def paper_example_pair() -> Tuple[Partition, Partition]:
    """The published symmetric partition pair of Figure 6."""
    machine = paper_example()
    pi = Partition.from_blocks(machine.states, [("1", "2"), ("3", "4")])
    theta = Partition.from_blocks(machine.states, [("1", "4"), ("2", "3")])
    return pi, theta


def shift_register(n_bits: int = 3, name: Optional[str] = None) -> MealyMachine:
    """The ``shiftreg`` benchmark: an ``n``-bit serial shift register.

    States are the register contents (MSB first), the input bit is shifted
    in at the LSB and the MSB is emitted.  For ``n_bits = 3`` this is the
    IWLS'93 ``shiftreg`` machine (8 states, 1 input bit, 1 output bit,
    16 transitions); its optimal pipeline factorisation is
    ``(|S1|, |S2|) = (4, 2)`` via ``pi =`` kernel of ``(b2, b0)`` and
    ``theta =`` kernel of ``b1``, exactly Table 1's row.
    """
    if n_bits < 1:
        raise FsmError("shift register needs at least one bit")
    states = [format(value, f"0{n_bits}b") for value in range(2 ** n_bits)]
    transitions = {}
    for state in states:
        for bit in "01":
            transitions[(state, bit)] = (state[1:] + bit, state[0])
    return MealyMachine(
        name if name is not None else f"shiftreg{n_bits}",
        states,
        ("0", "1"),
        ("0", "1"),
        transitions,
        reset_state=states[0],
    )


def _grid_cells(
    k1: int, k2: int, n_states: int, rng: random.Random
) -> List[Tuple[int, int]]:
    """An injective cell set with surjective projections, ``|T| = n_states``."""
    rows = list(range(k1))
    cols = list(range(k2))
    rng.shuffle(rows)
    rng.shuffle(cols)
    base = max(k1, k2)
    cells = [(rows[j % k1], cols[j % k2]) for j in range(base)]
    cell_set = set(cells)
    candidates = [
        (p, q) for p in range(k1) for q in range(k2) if (p, q) not in cell_set
    ]
    rng.shuffle(candidates)
    cells.extend(candidates[: n_states - base])
    cells.sort()
    return cells


def _cross_maps(
    cells: List[Tuple[int, int]],
    k1: int,
    k2: int,
    rng: random.Random,
    tries: int = 200,
) -> Optional[Tuple[List[int], List[int]]]:
    """Find ``f: [k1]->[k2]`` and ``g: [k2]->[k1]`` with the closure property.

    Closure: ``(p, q) in T  =>  (g(q), f(p)) in T``.  A fully random draw
    almost never satisfies the coupled constraints on sparse grids, so we
    solve a small CSP per try:

    1. For every *hard* row ``p`` (a row with >= 2 cells) choose a target
       column ``c_p = f(p)`` and constrain ``g(q)`` to ``rows_of(c_p)`` for
       each column ``q`` in that row: then all of ``p``'s cells land in
       column ``c_p`` on rows where that column has cells.
    2. Pick each ``g(q)`` from the intersection of its accumulated
       constraints (any row if unconstrained).
    3. Single-cell rows ``p`` with cell ``(p, q)`` take ``f(p)`` from the
       columns of row ``g(q)``, which is non-empty because the cell set has
       surjective projections.

    A final closure assertion re-checks every cell, so an accepted result
    is sound regardless of the search path.
    """
    cell_set = set(cells)
    cols_of_row: Dict[int, List[int]] = {p: [] for p in range(k1)}
    rows_of_col: Dict[int, List[int]] = {q: [] for q in range(k2)}
    for p, q in cells:
        cols_of_row[p].append(q)
        rows_of_col[q].append(p)
    hard_rows = [p for p in range(k1) if len(cols_of_row[p]) >= 2]
    columns = list(range(k2))

    for _ in range(tries):
        f: List[Optional[int]] = [None] * k1
        allowed_g: Dict[int, set] = {}
        feasible = True
        for p in hard_rows:
            target = rng.randrange(k2)
            f[p] = target
            target_rows = set(rows_of_col[target])
            for q in cols_of_row[p]:
                current = allowed_g.get(q)
                allowed_g[q] = (
                    target_rows if current is None else current & target_rows
                )
                if not allowed_g[q]:
                    feasible = False
                    break
            if not feasible:
                break
        if not feasible:
            continue
        g = [
            rng.choice(sorted(allowed_g[q])) if q in allowed_g else rng.randrange(k1)
            for q in columns
        ]
        for p in range(k1):
            if f[p] is None:
                if cols_of_row[p]:
                    q = cols_of_row[p][0]
                    f[p] = rng.choice(cols_of_row[g[q]])
                else:  # row unused by T (cannot happen with surjective T)
                    f[p] = rng.randrange(k2)
        if all((g[q], f[p]) in cell_set for p, q in cells):
            return [int(x) for x in f], g
    return None


def grid_embedded(
    k1: int,
    k2: int,
    n_states: int,
    n_inputs: int = 2,
    n_outputs: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
    max_tries: int = 300,
) -> PlantedMachine:
    """A machine with a planted symmetric pair of factor sizes ``(k1, k2)``.

    Guarantees on the returned machine:

    * strongly connected and reduced;
    * the row/column kernels ``(pi, theta)`` form a symmetric partition
      pair with ``pi ∧ theta = identity`` and block counts exactly
      ``(k1, k2)``;
    * ``(pi, theta)`` is additionally an **Mm-pair** (``M(theta) = pi`` and
      ``m(pi) = theta``), so the paper's search procedure can reach it (its
      node is the join of basis elements over row-related state pairs).
    """
    if not (max(k1, k2) <= n_states <= k1 * k2):
        raise FsmError(
            f"need max(k1,k2) <= n_states <= k1*k2, got ({k1}, {k2}, {n_states})"
        )
    rng = random.Random(seed)
    for _ in range(max_tries):
        cells = _grid_cells(k1, k2, n_states, rng)
        maps = [
            _cross_maps(cells, k1, k2, rng) for _ in range(n_inputs)
        ]
        if any(entry is None for entry in maps):
            continue
        cell_index = {cell: position for position, cell in enumerate(cells)}
        succ = [[0] * n_inputs for _ in range(n_states)]
        for position, (p, q) in enumerate(cells):
            for i, (f, g) in enumerate(maps):
                succ[position][i] = cell_index[(g[q], f[p])]
        out = [
            [rng.randrange(n_outputs) for _ in range(n_inputs)]
            for _ in range(n_states)
        ]
        machine = MealyMachine.from_tables(
            name if name is not None else f"grid{k1}x{k2}_{n_states}",
            [f"s{position}" for position in range(n_states)],
            [f"i{i}" for i in range(n_inputs)],
            [f"o{o}" for o in range(n_outputs)],
            succ,
            out,
        )
        planted = _planted_pair(machine, cells, k1, k2)
        if planted is None:
            continue
        if not is_strongly_connected(machine) or not is_reduced(machine):
            continue
        return PlantedMachine(machine, *planted)
    raise FsmError(
        f"grid_embedded({k1}, {k2}, {n_states}, seed={seed}) failed after "
        f"{max_tries} attempts; try a different seed"
    )


def _planted_pair(
    machine: MealyMachine, cells: List[Tuple[int, int]], k1: int, k2: int
) -> Optional[Tuple[Partition, Partition]]:
    """Validate and return the planted (row-kernel, column-kernel) pair."""
    row_labels = kernel.canonical([p for p, _ in cells])
    col_labels = kernel.canonical([q for _, q in cells])
    if kernel.num_blocks(row_labels) != k1 or kernel.num_blocks(col_labels) != k2:
        return None
    succ = machine.succ_table
    if not kernel.is_symmetric_pair(succ, row_labels, col_labels):
        return None
    if not kernel.meet_is_identity(row_labels, col_labels):
        return None
    # Require an Mm-pair so the DFS can reach it (see docstring).
    if kernel.big_m_operator(succ, col_labels) != row_labels:
        return None
    if kernel.m_operator(succ, row_labels) != col_labels:
        return None
    return (
        Partition(machine.states, row_labels),
        Partition(machine.states, col_labels),
    )


def full_product(
    k1: int,
    k2: int,
    n_inputs: int = 2,
    n_outputs: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
    max_tries: int = 300,
) -> PlantedMachine:
    """A fully decomposable machine: every ``(p, q)`` cell is a state."""
    return grid_embedded(
        k1,
        k2,
        k1 * k2,
        n_inputs=n_inputs,
        n_outputs=n_outputs,
        seed=seed,
        name=name if name is not None else f"product{k1}x{k2}",
        max_tries=max_tries,
    )


def two_coset(
    k: int,
    n_inputs: int = 2,
    n_outputs: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
    max_tries: int = 200,
) -> PlantedMachine:
    """An affine machine on two cosets: ``2k`` states with planted ``(k, k)``.

    States are the pairs ``(x, y) in Z_k x Z_k`` with ``x - y ≡ ±d (mod
    k)``; the dynamics are ``(x, y) --i--> (y + a_i, x + a_i)``, which swap
    the coordinate roles and therefore flip the sign of ``x - y``: the
    two-coset cell set is closed under them.  The row/column kernels form a
    symmetric partition pair with factor sizes exactly ``(k, k)`` and, by
    the affine structure, an Mm-pair: the successor-column signature of a
    state is ``(x + a_i)_i``, which separates rows, and the successor pairs
    of row-mates sweep every column's two states.

    This is the construction for dense ``n = 2k`` embeddings (the ``tbk``
    row of Table 1), where the generic sparse-grid CSP of
    :func:`grid_embedded` is infeasible.
    """
    if k < 3:
        raise FsmError("two_coset needs k >= 3")
    if n_inputs < 2:
        raise FsmError("two_coset needs at least two inputs for connectivity")
    rng = random.Random(seed)
    valid_offsets = [x for x in range(1, k) if (2 * x) % k != 0]
    if not valid_offsets:
        raise FsmError(f"no valid coset offset for k={k}")

    for _ in range(max_tries):
        offset = rng.choice(valid_offsets)
        # a_0 = 0 and a_1 = 1 guarantee strong connectivity (two-step moves
        # generate Z_k); the remaining shifts are free.
        shifts = [0, 1] + [rng.randrange(k) for _ in range(n_inputs - 2)]
        cells = sorted(
            {(x, (x - offset) % k) for x in range(k)}
            | {(x, (x + offset) % k) for x in range(k)}
        )
        cell_index = {cell: position for position, cell in enumerate(cells)}
        succ = [
            [
                cell_index[((y + a) % k, (x + a) % k)]
                for a in shifts
            ]
            for (x, y) in cells
        ]
        out = [
            [rng.randrange(n_outputs) for _ in range(n_inputs)]
            for _ in range(len(cells))
        ]
        machine = MealyMachine.from_tables(
            name if name is not None else f"twocoset{k}",
            [f"s{position}" for position in range(len(cells))],
            [f"i{i}" for i in range(n_inputs)],
            [f"o{o}" for o in range(n_outputs)],
            succ,
            out,
        )
        planted = _planted_pair(machine, cells, k, k)
        if planted is None:
            continue
        if not is_strongly_connected(machine) or not is_reduced(machine):
            continue
        return PlantedMachine(machine, *planted)
    raise FsmError(
        f"two_coset({k}, seed={seed}) failed after {max_tries} attempts"
    )


def merged_roles_machine(
    seed: int = 0, name: Optional[str] = None, max_tries: int = 400
) -> MealyMachine:
    """A machine whose OSTR optimum improves after one state split.

    Construction: a fully decomposable 3x2 product machine in which the
    two states ``(1, 0)`` and ``(2, 0)`` are *equivalent* by design
    (identical successor and output rows), then merged.  The merged state
    plays two structural roles -- it sits in two different rows of the
    grid -- so the 5-state machine has no nontrivial symmetric partition
    pair, while splitting the merged state back apart recovers the 3x2
    factorisation (3 flip-flops instead of 6).

    This is the paper's Section-5 "future work" scenario made concrete;
    see :mod:`repro.ostr.splitting`.
    """
    rng = random.Random(seed)
    k1, k2 = 3, 2
    for _ in range(max_tries):
        # f collides on rows 1 and 2; g arbitrary.
        f = [[rng.randrange(k2) for _ in range(k1)] for _ in range(2)]
        for i in range(2):
            f[i][2] = f[i][1]
        g = [[rng.randrange(k1) for _ in range(k2)] for _ in range(2)]
        cells = [(p, q) for p in range(k1) for q in range(k2)]
        cell_index = {cell: position for position, cell in enumerate(cells)}
        succ = [
            [cell_index[(g[i][q], f[i][p])] for i in range(2)]
            for (p, q) in cells
        ]
        out = [[rng.randrange(2) for _ in range(2)] for _ in range(len(cells))]
        # Make (1,0) and (2,0) identical, and (1,1) vs (2,1) distinct.
        out[cell_index[(2, 0)]] = list(out[cell_index[(1, 0)]])
        out[cell_index[(2, 1)]][0] = 1 - out[cell_index[(1, 1)]][0]

        machine = MealyMachine.from_tables(
            "pre_merge",
            [f"c{p}{q}" for (p, q) in cells],
            ["i0", "i1"],
            ["o0", "o1"],
            succ,
            out,
        )
        # The designed pair must be the *only* equivalence.
        from ..fsm.equivalence import equivalence_labels

        labels = kernel.canonical(equivalence_labels(machine))
        if kernel.num_blocks(labels) != len(cells) - 1:
            continue
        a = machine.state_index("c10")
        b = machine.state_index("c20")
        if labels[a] != labels[b]:
            continue
        merged = _merge_states(machine, "c10", "c20",
                               name if name is not None else f"merged{seed}")
        if not is_strongly_connected(merged) or not is_reduced(merged):
            continue
        return merged
    raise FsmError(f"merged_roles_machine(seed={seed}) failed; try another seed")


def _merge_states(machine: MealyMachine, keep, drop, name: str) -> MealyMachine:
    """Merge two states with identical rows (callers guarantee equivalence)."""
    keep_index = machine.state_index(keep)
    drop_index = machine.state_index(drop)
    states = [s for s in machine.states if s != drop]

    def remap(index: int) -> int:
        if index == drop_index:
            index = keep_index
        return index - 1 if index > drop_index else index

    succ = []
    out = []
    for position in range(machine.n_states):
        if position == drop_index:
            continue
        succ.append([remap(t) for t in machine.succ_table[position]])
        out.append(list(machine.out_table[position]))
    reset = machine.reset_state if machine.reset_state != drop else keep
    return MealyMachine.from_tables(
        name, states, machine.inputs, machine.outputs, succ, out,
        reset_state=reset,
    )


def unstructured(
    n_states: int,
    n_inputs: int = 2,
    n_outputs: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> MealyMachine:
    """A strongly connected, reduced random machine (trivial-solution family)."""
    return random_mealy(
        n_states,
        n_inputs,
        n_outputs,
        seed=seed,
        name=name,
        ensure_connected=True,
        ensure_reduced=True,
    )
