"""Reproduction experiment runners (Tables 1-2, Figures 1-8, claims).

Each function regenerates one artifact of the paper's evaluation and
returns structured results; the benchmark harness and the CLI are thin
wrappers around this module.  EXPERIMENTS.md records paper-vs-measured for
every artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from . import suite
from .bist import (
    build_conventional_bist,
    build_doubled,
    build_parallel_self_test,
    build_pipeline,
    build_plain,
)
from .exceptions import ReproError
from .faults import CoverageReport, exhaustive_patterns, measure_coverage, simulate_patterns
from .fsm import MealyMachine
from .fsm.random_machines import random_input_word
from .ostr import (
    OstrResult,
    conventional_bist_flipflops,
    search_ostr,
)
from .reporting import flag, format_percent, format_table


# ---------------------------------------------------------------------------
# Table 1: OSTR results on the benchmark suite
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table1Row:
    """One measured row of Table 1 next to the published row."""

    name: str
    n_states: int
    s1: int
    s2: int
    conventional_ff: int
    pipeline_ff: int
    exact: bool
    investigated: int
    basis_size: int
    elapsed_seconds: float
    paper: suite.PaperRow

    @property
    def matches_paper(self) -> bool:
        """Same factor sizes (unordered) and flip-flop counts as published."""
        return (
            {self.s1, self.s2} == {self.paper.s1, self.paper.s2}
            and self.pipeline_ff == self.paper.pipeline_ff
            and self.conventional_ff == self.paper.conventional_ff
        )


def run_table1(
    names: Optional[Sequence[str]] = None,
    search_overrides: Optional[Dict] = None,
) -> List[Table1Row]:
    """Regenerate Table 1 (one OSTR search per benchmark)."""
    rows = []
    for name in names if names is not None else suite.names():
        entry = suite.entry(name)
        machine = suite.load(name)
        kwargs = dict(entry.search_kwargs)
        if search_overrides:
            kwargs.update(search_overrides)
        result = search_ostr(machine, **kwargs)
        solution = _paper_orientation(result, entry.paper)
        rows.append(
            Table1Row(
                name=name,
                n_states=machine.n_states,
                s1=solution[0],
                s2=solution[1],
                conventional_ff=conventional_bist_flipflops(machine.n_states),
                pipeline_ff=result.solution.flipflops,
                exact=result.exact,
                investigated=result.stats.investigated,
                basis_size=result.stats.basis_size,
                elapsed_seconds=result.stats.elapsed_seconds,
                paper=entry.paper,
            )
        )
    return rows


def _paper_orientation(result: OstrResult, paper: suite.PaperRow) -> Tuple[int, int]:
    """Order measured factors to match the published row when sizes agree."""
    k1, k2 = result.solution.k1, result.solution.k2
    if {k1, k2} == {paper.s1, paper.s2}:
        return (paper.s1, paper.s2)
    return (max(k1, k2), min(k1, k2))


def format_table1(rows: Sequence[Table1Row]) -> str:
    """Render measured Table 1 side by side with the published values."""
    body = [
        (
            row.name + flag(not row.exact),
            row.n_states,
            row.s1,
            row.s2,
            row.conventional_ff,
            row.pipeline_ff,
            f"{row.paper.s1}/{row.paper.s2}/{row.paper.pipeline_ff}"
            + flag(row.paper.timeout),
            "yes" if row.matches_paper else "NO",
        )
        for row in rows
    ]
    return format_table(
        ("Name", "|S|", "|S1|", "|S2|", "conv.BIST", "pipeline", "paper", "match"),
        body,
        title="Table 1: OSTR results (measured vs. published; * = node/time limit)",
    )


# ---------------------------------------------------------------------------
# Table 2: impact of Lemma 1 (pruning)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Table2Row:
    name: str
    n_states: int
    basis_size: int
    tree_size: int  # |V| = 2^basis
    investigated: int
    pruned_subtrees: int
    exact: bool


def run_table2(
    names: Optional[Sequence[str]] = None,
    search_overrides: Optional[Dict] = None,
) -> List[Table2Row]:
    """Regenerate Table 2: total tree size vs nodes investigated."""
    rows = []
    for name in names if names is not None else suite.names():
        entry = suite.entry(name)
        machine = suite.load(name)
        kwargs = dict(entry.search_kwargs)
        if search_overrides:
            kwargs.update(search_overrides)
        result = search_ostr(machine, **kwargs)
        rows.append(
            Table2Row(
                name=name,
                n_states=machine.n_states,
                basis_size=result.stats.basis_size,
                tree_size=result.stats.tree_size,
                investigated=result.stats.investigated,
                pruned_subtrees=result.stats.pruned_subtrees,
                exact=result.exact,
            )
        )
    return rows


def format_table2(rows: Sequence[Table2Row]) -> str:
    body = [
        (
            row.name + flag(not row.exact),
            row.n_states,
            f"2^{row.basis_size}",
            row.investigated,
            row.pruned_subtrees,
        )
        for row in rows
    ]
    return format_table(
        ("Name", "|S|", "|V|", "# investigated", "# pruned subtrees"),
        body,
        title="Table 2: impact of Lemma 1 on the search effort",
    )


# ---------------------------------------------------------------------------
# Figures 1-4: architecture comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ArchitectureRow:
    machine: str
    architecture: str
    figure: str
    flipflops: int
    critical_path: int
    gate_inputs: int
    self_testable: bool
    transparent_register: bool


def run_architectures(machine: MealyMachine, method: str = "auto") -> List[ArchitectureRow]:
    """Build all four Figure architectures for one machine."""
    result = search_ostr(machine)
    realization = result.realization()
    plain = build_plain(machine, method=method)
    conventional = build_conventional_bist(machine, method=method)
    doubled = build_doubled(machine, method=method)
    pipeline = build_pipeline(realization, method=method)
    name = machine.name
    return [
        ArchitectureRow(name, "plain", "Fig.1", plain.flipflops,
                        plain.critical_path(), plain.gate_inputs(), False, False),
        ArchitectureRow(name, "conventional BIST", "Fig.2", conventional.flipflops,
                        conventional.critical_path(), conventional.gate_inputs(),
                        True, True),
        ArchitectureRow(name, "doubled", "Fig.3", doubled.flipflops,
                        doubled.critical_path(), doubled.gate_inputs(), True, False),
        ArchitectureRow(name, "pipeline (paper)", "Fig.4", pipeline.flipflops,
                        pipeline.critical_path(), pipeline.gate_inputs(), True, False),
    ]


def format_architectures(rows: Sequence[ArchitectureRow]) -> str:
    body = [
        (
            row.machine,
            f"{row.architecture} ({row.figure})",
            row.flipflops,
            row.critical_path,
            row.gate_inputs,
            "yes" if row.self_testable else "no",
            "yes" if row.transparent_register else "no",
        )
        for row in rows
    ]
    return format_table(
        ("Machine", "Architecture", "FFs", "crit.path", "gate inputs",
         "self-test", "transparent reg"),
        body,
        title="Figures 1-4: architecture comparison",
        align_left=(0, 1),
    )


# ---------------------------------------------------------------------------
# Fault-coverage claims (Section 1)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageRow:
    machine: str
    architecture: str
    total: int
    detected: int
    coverage: float
    structurally_missed: int  # faults the self-test cannot exercise at all
    detectable_coverage: float  # vs combinationally detectable faults


def run_coverage(
    machine: MealyMachine,
    cycles: Optional[int] = None,
    method: str = "auto",
    workers: int = 0,
    dropping: bool = False,
    superpose: bool = True,
    chunk_size: Optional[int] = None,
    pool=None,
    engine: str = "compiled",
    collapse: str = "none",
    prescreen: str = "none",
    timeout: Optional[float] = None,
    retries: Optional[int] = None,
    checkpoint: Optional[str] = None,
    degrade: bool = False,
) -> List[CoverageRow]:
    """Measure self-test stuck-at coverage of Figures 2-4 on one machine.

    ``workers``/``dropping``/``superpose``/``chunk_size`` select the
    campaign engine of :mod:`repro.faults.engine`; the reports are
    bit-identical to the serial oracle either way, so these are pure
    wall-clock knobs -- as is ``collapse="equiv"``, which schedules one
    representative per structural equivalence class and expands the
    verdicts back (``"dominance"`` shrinks the *reported* universe and is
    opt-in).  ``pool`` (a :class:`~repro.faults.pool.CampaignPool`) runs
    all four campaigns -- and the PPSFP redundancy screens -- over the
    same persistent workers, the sweep shape the pool exists for;
    ``engine="interpreted"`` selects the seed dict-keyed session loops as
    the oracle.

    ``timeout``/``retries``/``degrade`` arm the campaign runtime's
    watchdog, retry budget and degradation ladder (see
    :func:`repro.faults.engine.run_campaign`); ``checkpoint`` names a
    snapshot *prefix* -- each architecture campaign checkpoints to
    ``{checkpoint}.arch{i}`` so an interrupted sweep resumes per
    architecture, bit-identically.
    """
    result = search_ostr(machine)
    realization = result.realization()
    parallel = build_parallel_self_test(machine, method=method)
    conventional = build_conventional_bist(machine, method=method)
    doubled = build_doubled(machine, method=method)
    pipeline = build_pipeline(realization, method=method)

    rows = []
    for index, (controller, label) in enumerate(
        (
            (parallel, "parallel self-test (Fig.1)"),
            (conventional, "conventional BIST (Fig.2)"),
            (doubled, "doubled (Fig.3)"),
            (pipeline, "pipeline (Fig.4)"),
        )
    ):
        report = measure_coverage(
            controller,
            cycles=cycles,
            workers=workers,
            dropping=dropping,
            superpose=superpose,
            chunk_size=chunk_size,
            pool=pool,
            engine=engine,
            collapse=collapse,
            prescreen=prescreen,
            timeout=timeout,
            retries=retries,
            checkpoint=(
                f"{checkpoint}.arch{index}" if checkpoint is not None else None
            ),
            degrade=degrade,
        )
        redundant = _redundant_fault_count(controller, pool=pool, degrade=degrade)
        detectable = report.total - redundant
        structurally_missed = (
            len(controller.feedback_faults())
            if hasattr(controller, "feedback_faults")
            else 0
        )
        rows.append(
            CoverageRow(
                machine=machine.name,
                architecture=label,
                total=report.total,
                detected=report.detected,
                coverage=report.coverage,
                structurally_missed=structurally_missed,
                detectable_coverage=(
                    report.detected / detectable if detectable else 1.0
                ),
            )
        )
    return rows


def _redundant_fault_count(controller, pool=None, degrade=False) -> int:
    """Faults no input pattern can detect (combinational redundancy)."""
    networks = []
    if hasattr(controller, "plain"):
        networks.append(controller.plain.network)
        if type(controller).__name__ == "DoubledController":
            networks.append(controller.plain.network)  # both copies
    else:
        networks.extend([controller.c1, controller.c2, controller.lambda_net])
    redundant = 0
    for network in networks:
        patterns = exhaustive_patterns(len(network.inputs))
        try:
            outcome = simulate_patterns(network, patterns, pool=pool)
        except ReproError:
            # Degradation for the PPSFP screens mirrors the campaigns':
            # an unusable pool falls back to the in-process lanes, which
            # compute identical flags.
            if not degrade or pool is None:
                raise
            outcome = simulate_patterns(network, patterns)
        redundant += outcome.total - outcome.detected
    return redundant


def format_coverage(rows: Sequence[CoverageRow]) -> str:
    body = [
        (
            row.machine,
            row.architecture,
            row.total,
            row.detected,
            format_percent(row.coverage),
            format_percent(row.detectable_coverage),
            row.structurally_missed,
        )
        for row in rows
    ]
    return format_table(
        ("Machine", "Architecture", "faults", "detected", "coverage",
         "of detectable", "structurally missed"),
        body,
        title="Self-test stuck-at fault coverage (Section 1 claims)",
        align_left=(0, 1),
    )


# ---------------------------------------------------------------------------
# Figure 5-8 worked example
# ---------------------------------------------------------------------------


def run_paper_example() -> Dict[str, object]:
    """Reproduce the running example end to end (Figures 5-8)."""
    machine = suite.paper_example()
    pi, theta = suite.paper_example_pair()
    result = search_ostr(machine)
    realization = result.realization()
    pipeline = build_pipeline(realization)
    return {
        "machine": machine,
        "published_pair": (pi, theta),
        "search_result": result,
        "realization": realization,
        "pipeline": pipeline,
        "found_published_pair": {result.solution.pi, result.solution.theta}
        == {pi, theta},
    }


# ---------------------------------------------------------------------------
# Corpus sweeps (beyond the paper: population-scale validation)
# ---------------------------------------------------------------------------


def run_sweep(config=None, out_dir=None, service=None, **kwargs):
    """Run a corpus sweep (see :mod:`repro.suite.sweep`).

    Thin wrapper so the experiment surface stays one module: either pass a
    ready :class:`~repro.suite.sweep.SweepConfig` or keyword fields for
    one.  ``out_dir`` is required; ``service`` routes the campaigns
    through a running campaign service URL (:mod:`repro.service`).
    Returns the :class:`~repro.suite.sweep.SweepResult`.
    """
    from .suite.sweep import SweepConfig, run_sweep as _run

    if out_dir is None:
        raise ReproError("run_sweep needs an out_dir for the artifacts")
    if config is None:
        config = SweepConfig(**kwargs)
    elif kwargs:
        raise ReproError("pass either a SweepConfig or keyword fields, not both")
    return _run(config, out_dir, service=service)


def format_sweep_summary(summary: Dict[str, object]) -> str:
    """Human-readable digest of a sweep's ``summary.json`` payload."""
    lines = [
        f"machines: {summary['machines']} "
        f"({summary['ok']} ok, {summary['errors']} errors)",
    ]
    shard = summary.get("shard")
    if shard and shard.get("count", 1) > 1:
        lines.append(f"shard:    {shard['index'] + 1} of {shard['count']}")
    for record in summary.get("error_ids", []):
        lines.append(f"  error: {record}")
    synthesis = summary.get("synthesis")
    if synthesis:
        lines.append(
            f"synthesis: {synthesis['exact']} exact, "
            f"{synthesis['inexact']} inexact, "
            f"{synthesis['nontrivial']} nontrivial factorizations"
        )
    coverage = summary.get("coverage")
    if coverage:
        lines.append(
            f"coverage: mean {100.0 * coverage['mean_coverage']:.2f}%, "
            f"min {100.0 * coverage['min_coverage']:.2f}% "
            f"({coverage['min_coverage_id']}); "
            f"{coverage['total_detected']}/{coverage['total_faults']} faults"
        )
    collapse = summary.get("collapse")
    if collapse:
        lines.append(
            f"collapse: mean reduction "
            f"{100.0 * collapse['mean_reduction']:.1f}%"
        )
    if "elapsed_s" in summary:
        lines.append(f"elapsed:  {summary['elapsed_s']:.2f}s")
    return "\n".join(lines)
