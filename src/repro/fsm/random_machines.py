"""Seeded random Mealy machine generators.

Random machines serve three purposes in this reproduction:

1. property-based and differential testing of the partition/OSTR algorithms,
2. shape-matched stand-ins for unavailable IWLS'93 benchmarks that the paper
   reports *trivial* OSTR solutions for (an unstructured random machine
   admits a nontrivial symmetric partition pair only with vanishing
   probability), and
3. workload generation for the fault-simulation and architecture benches.

All generators take an explicit ``seed`` and are fully deterministic.
"""

from __future__ import annotations

import random
from typing import List, Optional

from ..exceptions import FsmError
from .equivalence import is_reduced
from .machine import MealyMachine
from .reachability import is_strongly_connected


def _symbols(prefix: str, count: int) -> List[str]:
    return [f"{prefix}{k}" for k in range(count)]


def random_mealy(
    n_states: int,
    n_inputs: int = 2,
    n_outputs: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
    ensure_connected: bool = True,
    ensure_reduced: bool = False,
    max_tries: int = 200,
) -> MealyMachine:
    """A uniformly random fully specified Mealy machine.

    With ``ensure_connected`` the generator rejects machines whose state
    graph is not strongly connected; with ``ensure_reduced`` it also rejects
    machines with equivalent state pairs.  Rejection sampling converges
    quickly for the sizes used here (a random functional graph on ``n``
    states with ``2+`` inputs is strongly connected with decent probability,
    and almost always reduced when ``n_outputs >= 2``).
    """
    if n_states < 1 or n_inputs < 1 or n_outputs < 1:
        raise FsmError("state, input and output counts must be positive")
    rng = random.Random(seed)
    states = _symbols("s", n_states)
    inputs = _symbols("i", n_inputs)
    outputs = _symbols("o", n_outputs)

    for attempt in range(max_tries):
        succ = [
            [rng.randrange(n_states) for _ in range(n_inputs)]
            for _ in range(n_states)
        ]
        out = [
            [rng.randrange(n_outputs) for _ in range(n_inputs)]
            for _ in range(n_states)
        ]
        # Cheap connectivity repair: route input 0 along a random cycle
        # covering all states, which guarantees strong connectivity while
        # leaving the remaining columns uniform.
        if ensure_connected and n_states > 1:
            cycle = list(range(n_states))
            rng.shuffle(cycle)
            for position, state in enumerate(cycle):
                succ[state][0] = cycle[(position + 1) % n_states]
        machine = MealyMachine.from_tables(
            name if name is not None else f"random{n_states}_{seed}",
            states,
            inputs,
            outputs,
            succ,
            out,
        )
        if ensure_connected and not is_strongly_connected(machine):
            continue
        if ensure_reduced and not is_reduced(machine):
            continue
        return machine
    raise FsmError(
        f"could not generate a machine with the requested properties in "
        f"{max_tries} tries (n_states={n_states}, seed={seed})"
    )


def random_reduced_mealy(
    n_states: int,
    n_inputs: int = 2,
    n_outputs: int = 2,
    seed: int = 0,
    name: Optional[str] = None,
) -> MealyMachine:
    """Shorthand for a strongly connected, reduced random machine."""
    return random_mealy(
        n_states,
        n_inputs,
        n_outputs,
        seed=seed,
        name=name,
        ensure_connected=True,
        ensure_reduced=True,
    )


def random_input_word(machine: MealyMachine, length: int, seed: int = 0) -> tuple:
    """A reproducible random input word for ``machine``."""
    rng = random.Random(seed)
    return tuple(rng.choice(machine.inputs) for _ in range(length))
