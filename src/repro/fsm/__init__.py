"""Finite state machine substrate: model, I/O, analysis, realization checks."""

from .machine import MealyMachine
from .equivalence import (
    equivalence_partition,
    equivalent_states,
    is_reduced,
    minimized,
)
from .kiss import dump, dumps, load, loads
from .operations import (
    find_isomorphism,
    is_isomorphic,
    product,
    quotient,
    relabel_states,
)
from .reachability import (
    is_connected,
    is_strongly_connected,
    reachable_states,
    strongly_connected_components,
)
from .realization import (
    RealizationWitness,
    behaviourally_realizes,
    check_realization,
    is_realization,
)
from .random_machines import random_mealy, random_reduced_mealy
from .simulate import Trace, io_equivalent, output_sequence, simulate
from .dot import machine_to_dot, pair_to_dot

__all__ = [
    "MealyMachine",
    "equivalence_partition",
    "equivalent_states",
    "is_reduced",
    "minimized",
    "load",
    "loads",
    "dump",
    "dumps",
    "quotient",
    "product",
    "relabel_states",
    "find_isomorphism",
    "is_isomorphic",
    "reachable_states",
    "is_connected",
    "is_strongly_connected",
    "strongly_connected_components",
    "RealizationWitness",
    "check_realization",
    "is_realization",
    "behaviourally_realizes",
    "random_mealy",
    "random_reduced_mealy",
    "Trace",
    "simulate",
    "output_sequence",
    "io_equivalent",
    "machine_to_dot",
    "pair_to_dot",
]
