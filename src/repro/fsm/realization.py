"""Realizations of finite state machines (Definition 3 of the paper).

``M* = (S*, I*, O*, delta*, lambda*)`` *realizes* ``M = (S, I, O, delta,
lambda)`` iff there is a triple of mappings ``(alpha, iota, zeta)`` with

* ``alpha: S -> S*``, ``iota: I -> I*``, ``zeta: O* -> O``,
* ``delta*(alpha(s), iota(i)) = alpha(delta(s, i))``      (state homomorphism)
* ``zeta(lambda*(alpha(s), iota(i))) = lambda(s, i)``     (output factoring)

for all ``s in S`` and ``i in I``.  This module provides an explicit
:class:`RealizationWitness` container, a checker that verifies the two
equations exhaustively, and a behavioural cross-check via product-machine
input/output equivalence (which must follow from the equations, and is
verified independently in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..exceptions import RealizationError
from .machine import MealyMachine, Symbol
from .simulate import io_equivalent


@dataclass(frozen=True)
class RealizationWitness:
    """The triple ``(alpha, iota, zeta)`` of Definition 3."""

    alpha: Mapping[Symbol, Symbol]
    iota: Mapping[Symbol, Symbol]
    zeta: Mapping[Symbol, Symbol]


def check_realization(
    spec: MealyMachine,
    impl: MealyMachine,
    witness: RealizationWitness,
) -> None:
    """Verify Definition 3; raise :class:`RealizationError` on any violation.

    The check is exhaustive over ``S x I`` and therefore a proof for finite
    machines.
    """
    alpha, iota, zeta = witness.alpha, witness.iota, witness.zeta
    for state in spec.states:
        if state not in alpha:
            raise RealizationError(f"alpha is not defined on state {state!r}")
        impl.state_index(alpha[state])  # validates codomain
    for symbol in spec.inputs:
        if symbol not in iota:
            raise RealizationError(f"iota is not defined on input {symbol!r}")
        impl.input_index(iota[symbol])

    for state in spec.states:
        for symbol in spec.inputs:
            expected_state = alpha[spec.delta(state, symbol)]
            actual_state = impl.delta(alpha[state], iota[symbol])
            if actual_state != expected_state:
                raise RealizationError(
                    "state homomorphism violated at "
                    f"(s={state!r}, i={symbol!r}): delta*(alpha(s), iota(i)) = "
                    f"{actual_state!r} but alpha(delta(s, i)) = {expected_state!r}"
                )
            impl_output = impl.lam(alpha[state], iota[symbol])
            if impl_output not in zeta:
                raise RealizationError(
                    f"zeta is not defined on produced output {impl_output!r}"
                )
            if zeta[impl_output] != spec.lam(state, symbol):
                raise RealizationError(
                    "output factoring violated at "
                    f"(s={state!r}, i={symbol!r}): zeta(lambda*(...)) = "
                    f"{zeta[impl_output]!r} but lambda(s, i) = "
                    f"{spec.lam(state, symbol)!r}"
                )


def is_realization(
    spec: MealyMachine,
    impl: MealyMachine,
    witness: RealizationWitness,
) -> bool:
    """Boolean form of :func:`check_realization`."""
    try:
        check_realization(spec, impl, witness)
    except RealizationError:
        return False
    return True


def behaviourally_realizes(
    spec: MealyMachine,
    impl: MealyMachine,
    witness: RealizationWitness,
    start: Hashable = None,
) -> bool:
    """Behavioural consequence of Definition 3 for a start state.

    If ``impl`` realizes ``spec`` then, started in ``alpha(s0)``, ``impl``
    must be input/output equivalent to ``spec`` started in ``s0`` modulo the
    ``iota``/``zeta`` translations.  This is a *necessary* condition and is
    used as an independent cross-check of the exhaustive equation check.
    """
    s0 = spec.reset_state if start is None else start
    return io_equivalent(
        spec,
        s0,
        impl,
        witness.alpha[s0],
        input_map=dict(witness.iota),
        output_map=dict(witness.zeta),
    )
