"""Graphviz DOT export for machines and their partition structure.

Produces standard ``dot`` text for state-transition graphs, optionally
colouring states by the blocks of one partition or laying out the grid
structure of a symmetric partition pair (rows = ``pi`` blocks, columns =
``theta`` blocks) -- the visual version of the paper's Figure 6.
"""

from __future__ import annotations

from typing import Optional

from ..exceptions import FsmError
from ..partitions import Partition
from .machine import MealyMachine

_PALETTE = (
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
)


def _quote(value: object) -> str:
    return '"' + str(value).replace('"', '\\"') + '"'


def machine_to_dot(
    machine: MealyMachine,
    partition: Optional[Partition] = None,
    name: Optional[str] = None,
) -> str:
    """DOT digraph of the state-transition graph.

    Edges are labelled ``input/output``; parallel transitions between the
    same pair of states are merged into one multi-label edge.  With
    ``partition``, states are filled with one colour per block.
    """
    if partition is not None and partition.universe != machine.states:
        raise FsmError("partition universe does not match machine states")
    lines = [f"digraph {_quote(name or machine.name)} {{", "    rankdir=LR;"]
    lines.append("    node [shape=circle, style=filled, fillcolor=white];")
    for state in machine.states:
        attributes = []
        if state == machine.reset_state:
            attributes.append("penwidth=2")
        if partition is not None:
            block = partition.block_index(state)
            attributes.append(
                f'fillcolor="{_PALETTE[block % len(_PALETTE)]}"'
            )
        suffix = f" [{', '.join(attributes)}]" if attributes else ""
        lines.append(f"    {_quote(state)}{suffix};")

    merged = {}
    for state, symbol, next_state, output in machine.transitions():
        merged.setdefault((state, next_state), []).append(f"{symbol}/{output}")
    for (source, target), labels in merged.items():
        label = "\\n".join(labels)
        lines.append(
            f"    {_quote(source)} -> {_quote(target)} [label={_quote(label)}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"


def pair_to_dot(
    machine: MealyMachine,
    pi: Partition,
    theta: Partition,
    name: Optional[str] = None,
) -> str:
    """DOT rendering of a partition pair as the Figure-6 grid.

    States are placed in clusters by ``pi`` block (rows); the node label
    carries the ``theta`` block, and edges are the state transitions.
    """
    for partition in (pi, theta):
        if partition.universe != machine.states:
            raise FsmError("partition universe does not match machine states")
    lines = [f"digraph {_quote(name or machine.name + '_pair')} {{"]
    lines.append("    compound=true; node [shape=box, style=filled];")
    for block_index, block in enumerate(pi.blocks()):
        lines.append(f"    subgraph cluster_pi{block_index} {{")
        lines.append(f'        label="pi block {{{",".join(map(str, block))}}}";')
        for state in block:
            colour = _PALETTE[theta.block_index(state) % len(_PALETTE)]
            lines.append(
                f"        {_quote(state)} [fillcolor=\"{colour}\"];"
            )
        lines.append("    }")
    merged = {}
    for state, symbol, next_state, _ in machine.transitions():
        merged.setdefault((state, next_state), []).append(str(symbol))
    for (source, target), labels in merged.items():
        lines.append(
            f"    {_quote(source)} -> {_quote(target)} "
            f"[label={_quote(','.join(labels))}];"
        )
    lines.append("}")
    return "\n".join(lines) + "\n"
