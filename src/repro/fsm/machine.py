"""The Mealy finite state machine model (Definition 1 of the paper).

A :class:`MealyMachine` is a fully specified machine
``M = (S, I, O, delta, lambda)``: for *every* state and *every* input there
is exactly one transition.  The paper assumes fully specified machines
throughout ("it is assumed that controllers are fully specified as
mealy-type finite state machines"), and the benchmark set it evaluates is
the *fully specified* subset of the IWLS'93 distribution, so completeness is
enforced at construction time.

States, inputs and outputs are arbitrary hashable symbols at the API
boundary; internally everything is index-based (``succ[s][i]`` /
``out[s][i]`` tables) because the partition algebra and the OSTR search are
index-based for speed.
"""

from __future__ import annotations

from typing import (
    Dict,
    Hashable,
    Iterator,
    Mapping,
    Sequence,
    Tuple,
)

from ..exceptions import FsmError

Symbol = Hashable
Transitions = Mapping[Tuple[Symbol, Symbol], Tuple[Symbol, Symbol]]


class MealyMachine:
    """A fully specified Mealy machine ``M = (S, I, O, delta, lambda)``."""

    __slots__ = (
        "name",
        "_states",
        "_inputs",
        "_outputs",
        "_state_index",
        "_input_index",
        "_output_index",
        "_succ",
        "_out",
        "reset_state",
    )

    def __init__(
        self,
        name: str,
        states: Sequence[Symbol],
        inputs: Sequence[Symbol],
        outputs: Sequence[Symbol],
        transitions: Transitions,
        reset_state: Symbol = None,
    ) -> None:
        self.name = str(name)
        self._states = tuple(states)
        self._inputs = tuple(inputs)
        self._outputs = tuple(outputs)
        if not self._states:
            raise FsmError("state set must be non-empty")
        if not self._inputs:
            raise FsmError("input set must be non-empty")
        if not self._outputs:
            raise FsmError("output set must be non-empty")
        for label, symbols in (
            ("state", self._states),
            ("input", self._inputs),
            ("output", self._outputs),
        ):
            if len(symbols) != len(set(symbols)):
                raise FsmError(f"duplicate {label} symbols: {symbols!r}")

        self._state_index: Dict[Symbol, int] = {s: k for k, s in enumerate(self._states)}
        self._input_index: Dict[Symbol, int] = {i: k for k, i in enumerate(self._inputs)}
        self._output_index: Dict[Symbol, int] = {o: k for k, o in enumerate(self._outputs)}

        n, m = len(self._states), len(self._inputs)
        succ = [[-1] * m for _ in range(n)]
        out = [[-1] * m for _ in range(n)]
        for (state, symbol), (next_state, output) in transitions.items():
            s = self._state_index.get(state)
            i = self._input_index.get(symbol)
            if s is None:
                raise FsmError(f"transition from unknown state {state!r}")
            if i is None:
                raise FsmError(f"transition on unknown input {symbol!r}")
            t = self._state_index.get(next_state)
            o = self._output_index.get(output)
            if t is None:
                raise FsmError(f"transition to unknown state {next_state!r}")
            if o is None:
                raise FsmError(f"transition with unknown output {output!r}")
            if succ[s][i] != -1:
                raise FsmError(
                    f"duplicate transition for state {state!r}, input {symbol!r}"
                )
            succ[s][i] = t
            out[s][i] = o
        for s in range(n):
            for i in range(m):
                if succ[s][i] == -1:
                    raise FsmError(
                        "machine is not fully specified: missing transition for "
                        f"state {self._states[s]!r}, input {self._inputs[i]!r}"
                    )
        self._succ: Tuple[Tuple[int, ...], ...] = tuple(tuple(row) for row in succ)
        self._out: Tuple[Tuple[int, ...], ...] = tuple(tuple(row) for row in out)

        if reset_state is not None and reset_state not in self._state_index:
            raise FsmError(f"reset state {reset_state!r} not in state set")
        self.reset_state = reset_state if reset_state is not None else self._states[0]

    # -- alternative constructor ------------------------------------------

    @classmethod
    def from_tables(
        cls,
        name: str,
        states: Sequence[Symbol],
        inputs: Sequence[Symbol],
        outputs: Sequence[Symbol],
        succ: Sequence[Sequence[int]],
        out: Sequence[Sequence[int]],
        reset_state: Symbol = None,
    ) -> "MealyMachine":
        """Build directly from index-based successor/output tables."""
        transitions = {}
        for s, state in enumerate(states):
            for i, symbol in enumerate(inputs):
                transitions[(state, symbol)] = (states[succ[s][i]], outputs[out[s][i]])
        return cls(name, states, inputs, outputs, transitions, reset_state)

    # -- symbol sets --------------------------------------------------------

    @property
    def states(self) -> Tuple[Symbol, ...]:
        return self._states

    @property
    def inputs(self) -> Tuple[Symbol, ...]:
        return self._inputs

    @property
    def outputs(self) -> Tuple[Symbol, ...]:
        return self._outputs

    @property
    def n_states(self) -> int:
        return len(self._states)

    @property
    def n_inputs(self) -> int:
        return len(self._inputs)

    @property
    def n_outputs(self) -> int:
        return len(self._outputs)

    # -- index access (used by the algorithm layers) ------------------------

    @property
    def succ_table(self) -> Tuple[Tuple[int, ...], ...]:
        """``succ[s][i]`` = index of ``delta(states[s], inputs[i])``."""
        return self._succ

    @property
    def out_table(self) -> Tuple[Tuple[int, ...], ...]:
        """``out[s][i]`` = index of ``lambda(states[s], inputs[i])``."""
        return self._out

    def state_index(self, state: Symbol) -> int:
        try:
            return self._state_index[state]
        except KeyError as exc:
            raise FsmError(f"unknown state {state!r}") from exc

    def input_index(self, symbol: Symbol) -> int:
        try:
            return self._input_index[symbol]
        except KeyError as exc:
            raise FsmError(f"unknown input {symbol!r}") from exc

    def output_index(self, symbol: Symbol) -> int:
        try:
            return self._output_index[symbol]
        except KeyError as exc:
            raise FsmError(f"unknown output {symbol!r}") from exc

    # -- the machine functions ----------------------------------------------

    def delta(self, state: Symbol, symbol: Symbol) -> Symbol:
        """The next-state function ``delta: S x I -> S``."""
        return self._states[self._succ[self.state_index(state)][self.input_index(symbol)]]

    def lam(self, state: Symbol, symbol: Symbol) -> Symbol:
        """The output function ``lambda: S x I -> O``."""
        return self._outputs[self._out[self.state_index(state)][self.input_index(symbol)]]

    def step(self, state: Symbol, symbol: Symbol) -> Tuple[Symbol, Symbol]:
        """One transition: returns ``(delta(s, i), lambda(s, i))``."""
        s = self.state_index(state)
        i = self.input_index(symbol)
        return self._states[self._succ[s][i]], self._outputs[self._out[s][i]]

    def transitions(self) -> Iterator[Tuple[Symbol, Symbol, Symbol, Symbol]]:
        """Yield all transitions as ``(state, input, next_state, output)``."""
        for s, state in enumerate(self._states):
            for i, symbol in enumerate(self._inputs):
                yield (
                    state,
                    symbol,
                    self._states[self._succ[s][i]],
                    self._outputs[self._out[s][i]],
                )

    # -- convenience ----------------------------------------------------------

    def renamed(self, name: str) -> "MealyMachine":
        """A copy of this machine under a different name."""
        return MealyMachine.from_tables(
            name,
            self._states,
            self._inputs,
            self._outputs,
            self._succ,
            self._out,
            self.reset_state,
        )

    def transition_table(self) -> str:
        """Paper-style state transition table (Figure 5 layout).

        Rows are states, columns are inputs, entries are
        ``next_state/output``.
        """
        header = [""] + [str(i) for i in self._inputs]
        rows = []
        for s, state in enumerate(self._states):
            row = [str(state)]
            for i in range(len(self._inputs)):
                row.append(
                    f"{self._states[self._succ[s][i]]}/{self._outputs[self._out[s][i]]}"
                )
            rows.append(row)
        widths = [max(len(r[c]) for r in [header] + rows) for c in range(len(header))]
        lines = []
        for r in [header] + rows:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(r, widths)))
        return "\n".join(lines)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same symbol sets (in order) and same tables."""
        if not isinstance(other, MealyMachine):
            return NotImplemented
        return (
            self._states == other._states
            and self._inputs == other._inputs
            and self._outputs == other._outputs
            and self._succ == other._succ
            and self._out == other._out
        )

    def __hash__(self) -> int:
        return hash((self._states, self._inputs, self._outputs, self._succ, self._out))

    def __repr__(self) -> str:
        return (
            f"MealyMachine({self.name!r}, |S|={self.n_states}, "
            f"|I|={self.n_inputs}, |O|={self.n_outputs})"
        )
