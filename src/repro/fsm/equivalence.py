"""State equivalence and machine minimization.

The paper's Theorem 1 requires the condition ``pi ∩ theta ⊆ epsilon`` where
``epsilon`` denotes *the equivalence of states*: ``s`` and ``t`` are
equivalent iff every input sequence produces the same output sequence from
both.  For fully specified machines this is computed by Moore-style
partition refinement: start from the partition induced by the output rows
``lambda(s, .)`` and refine by successor-block signatures until stable.

The fixpoint has a classical characterisation in the language of the paper:
``epsilon`` is the coarsest partition ``p`` that refines the output-row
partition and satisfies ``(p, p)`` partition-pair-ness (it has the
substitution property).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..partitions import Partition
from ..partitions import kernel
from .machine import MealyMachine


def equivalence_labels(machine: MealyMachine) -> Tuple[int, ...]:
    """Canonical label tuple of the state-equivalence partition ``epsilon``."""
    succ = machine.succ_table
    out = machine.out_table
    n = machine.n_states

    labels = _rows_as_keys(out)
    while True:
        signature_map: Dict[Tuple[int, ...], int] = {}
        refined: List[int] = []
        for s in range(n):
            signature = (labels[s],) + tuple(labels[t] for t in succ[s])
            block = signature_map.get(signature)
            if block is None:
                block = len(signature_map)
                signature_map[signature] = block
            refined.append(block)
        refined_tuple = kernel.canonical(refined)
        if refined_tuple == labels:
            return labels
        labels = refined_tuple


def _rows_as_keys(out: Sequence[Sequence[object]]) -> Tuple[int, ...]:
    """Initial partition: group states by identical output rows."""
    mapping: Dict[Tuple[object, ...], int] = {}
    labels = []
    for row in out:
        key = tuple(row)
        block = mapping.get(key)
        if block is None:
            block = len(mapping)
            mapping[key] = block
        labels.append(block)
    return tuple(labels)


def equivalence_partition(machine: MealyMachine) -> Partition:
    """The state-equivalence relation ``epsilon`` as a :class:`Partition`."""
    return Partition(machine.states, equivalence_labels(machine))


def is_reduced(machine: MealyMachine) -> bool:
    """A machine is reduced iff no two distinct states are equivalent."""
    return kernel.num_blocks(equivalence_labels(machine)) == machine.n_states


def minimized(machine: MealyMachine, name: Optional[str] = None) -> MealyMachine:
    """The reduced quotient machine ``M / epsilon``.

    Block representatives are the first state of each block, and the block
    of the original reset state becomes the new reset state.  The quotient
    is well defined because ``epsilon`` has the substitution property and
    equivalent states have identical output rows by construction.
    """
    labels = equivalence_labels(machine)
    n_blocks = kernel.num_blocks(labels)
    if n_blocks == machine.n_states:
        return machine.renamed(name if name is not None else machine.name)

    representative = [-1] * n_blocks
    for s in range(machine.n_states):
        if representative[labels[s]] == -1:
            representative[labels[s]] = s

    block_states = tuple(machine.states[representative[b]] for b in range(n_blocks))
    succ = []
    out = []
    for b in range(n_blocks):
        s = representative[b]
        succ.append([labels[t] for t in machine.succ_table[s]])
        out.append(list(machine.out_table[s]))
    return MealyMachine.from_tables(
        name if name is not None else f"{machine.name}_min",
        block_states,
        machine.inputs,
        machine.outputs,
        succ,
        out,
        reset_state=machine.states[
            representative[labels[machine.state_index(machine.reset_state)]]
        ],
    )


def equivalent_states(machine: MealyMachine, s: str, t: str) -> bool:
    """Are two states of the same machine equivalent?"""
    labels = equivalence_labels(machine)
    return labels[machine.state_index(s)] == labels[machine.state_index(t)]
