"""Structural operations on Mealy machines: quotient, product, isomorphism.

The quotient construction is the bridge between the partition algebra and
machine synthesis: given a partition with the substitution property the
quotient machine is well defined on states, and given an output-consistent
partition it is well defined on outputs too.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..exceptions import FsmError
from ..partitions import Partition
from ..partitions.kernel import is_pair
from .machine import MealyMachine, Symbol


def quotient(
    machine: MealyMachine, partition: Partition, name: Optional[str] = None
) -> MealyMachine:
    """The quotient machine ``M / p`` for a substitution-property partition.

    Requires ``(p, p)`` to be a partition pair (so the next-state function
    is well defined on blocks) and all states of a block to have identical
    output rows (so the output function is well defined).  Raises
    :class:`FsmError` otherwise.
    """
    if partition.universe != machine.states:
        raise FsmError("partition universe does not match machine states")
    labels = partition.labels
    succ = machine.succ_table
    out = machine.out_table
    if not is_pair(succ, labels, labels):
        raise FsmError(
            "partition does not have the substitution property; quotient "
            "next-state function would be ill-defined"
        )
    representative: Dict[int, int] = {}
    for s in range(machine.n_states):
        block = labels[s]
        if block not in representative:
            representative[block] = s
        elif out[s] != out[representative[block]]:
            raise FsmError(
                "states in one block have different output rows; quotient "
                "output function would be ill-defined"
            )

    n_blocks = partition.num_blocks
    block_states = tuple(
        "{" + ",".join(str(x) for x in block) + "}" for block in partition.blocks()
    )
    new_succ: List[List[int]] = []
    new_out: List[List[int]] = []
    for block in range(n_blocks):
        s = representative[block]
        new_succ.append([labels[t] for t in succ[s]])
        new_out.append(list(out[s]))
    return MealyMachine.from_tables(
        name if name is not None else f"{machine.name}/quotient",
        block_states,
        machine.inputs,
        machine.outputs,
        new_succ,
        new_out,
        reset_state=block_states[labels[machine.state_index(machine.reset_state)]],
    )


def product(
    machine_a: MealyMachine, machine_b: MealyMachine, name: Optional[str] = None
) -> MealyMachine:
    """Synchronous product over a shared input alphabet.

    Output symbols are pairs of the component outputs.  Used by analysis
    tools (e.g. distinguishing-sequence search) and tests.
    """
    if machine_a.inputs != machine_b.inputs:
        raise FsmError("product requires identical input alphabets")
    states = [(sa, sb) for sa in machine_a.states for sb in machine_b.states]
    outputs = sorted(
        {(oa, ob) for oa in machine_a.outputs for ob in machine_b.outputs},
        key=str,
    )
    transitions = {}
    for sa, sb in states:
        for symbol in machine_a.inputs:
            next_a, out_a = machine_a.step(sa, symbol)
            next_b, out_b = machine_b.step(sb, symbol)
            transitions[((sa, sb), symbol)] = ((next_a, next_b), (out_a, out_b))
    return MealyMachine(
        name if name is not None else f"{machine_a.name}x{machine_b.name}",
        states,
        machine_a.inputs,
        outputs,
        transitions,
        reset_state=(machine_a.reset_state, machine_b.reset_state),
    )


def relabel_states(machine: MealyMachine, mapping: Dict[Symbol, Symbol]) -> MealyMachine:
    """Rename states through a bijective mapping."""
    new_states = []
    for state in machine.states:
        if state not in mapping:
            raise FsmError(f"mapping misses state {state!r}")
        new_states.append(mapping[state])
    if len(set(new_states)) != len(new_states):
        raise FsmError("state relabelling is not injective")
    return MealyMachine.from_tables(
        machine.name,
        new_states,
        machine.inputs,
        machine.outputs,
        machine.succ_table,
        machine.out_table,
        reset_state=mapping[machine.reset_state],
    )


def find_isomorphism(
    machine_a: MealyMachine, machine_b: MealyMachine
) -> Optional[Dict[Symbol, Symbol]]:
    """A state bijection making the machines identical, or ``None``.

    Requires equal input/output alphabets (same order).  Works by anchored
    propagation from each candidate image of the first state over the
    *connected* part, then brute-force matching of any remaining states; it
    is intended for the small machines of this domain.
    """
    if (
        machine_a.n_states != machine_b.n_states
        or machine_a.inputs != machine_b.inputs
        or machine_a.outputs != machine_b.outputs
    ):
        return None

    n = machine_a.n_states
    succ_a, out_a = machine_a.succ_table, machine_a.out_table
    succ_b, out_b = machine_b.succ_table, machine_b.out_table

    def try_anchor(anchor: int) -> Optional[Dict[int, int]]:
        mapping = {0: anchor}
        used = {anchor}
        stack = [0]
        while stack:
            a = stack.pop()
            b = mapping[a]
            if out_a[a] != out_b[b]:
                return None
            for i in range(machine_a.n_inputs):
                ta, tb = succ_a[a][i], succ_b[b][i]
                if ta in mapping:
                    if mapping[ta] != tb:
                        return None
                else:
                    if tb in used:
                        return None
                    mapping[ta] = tb
                    used.add(tb)
                    stack.append(ta)
        if len(mapping) == n:
            return mapping
        # Disconnected remainder: recurse over the unmapped sub-machines.
        remainder_a = sorted(set(range(n)) - set(mapping))
        remainder_b = sorted(set(range(n)) - used)
        return _match_remainder(
            remainder_a, remainder_b, mapping, used, succ_a, out_a, succ_b, out_b,
            machine_a.n_inputs,
        )

    for anchor in range(n):
        mapping = try_anchor(anchor)
        if mapping is not None:
            return {
                machine_a.states[a]: machine_b.states[b] for a, b in mapping.items()
            }
    return None


def _match_remainder(
    remainder_a: Sequence[int],
    remainder_b: Sequence[int],
    mapping: Dict[int, int],
    used: Set[int],
    succ_a: Sequence[Sequence[int]],
    out_a: Sequence[Sequence[Symbol]],
    succ_b: Sequence[Sequence[int]],
    out_b: Sequence[Sequence[Symbol]],
    n_inputs: int,
) -> Optional[Dict[int, int]]:
    """Backtracking completion of a partial isomorphism (small machines)."""
    if not remainder_a:
        return dict(mapping)
    a = remainder_a[0]
    for b in remainder_b:
        if b in used:
            continue
        trial = dict(mapping)
        trial_used = set(used)
        trial[a] = b
        trial_used.add(b)
        stack = [a]
        consistent = True
        while stack and consistent:
            x = stack.pop()
            y = trial[x]
            if out_a[x] != out_b[y]:
                consistent = False
                break
            for i in range(n_inputs):
                tx, ty = succ_a[x][i], succ_b[y][i]
                if tx in trial:
                    if trial[tx] != ty:
                        consistent = False
                        break
                else:
                    if ty in trial_used:
                        consistent = False
                        break
                    trial[tx] = ty
                    trial_used.add(ty)
                    stack.append(tx)
        if not consistent:
            continue
        result = _match_remainder(
            [x for x in remainder_a if x not in trial],
            [y for y in remainder_b if y not in trial_used],
            trial,
            trial_used,
            succ_a,
            out_a,
            succ_b,
            out_b,
            n_inputs,
        )
        if result is not None:
            return result
    return None


def is_isomorphic(machine_a: MealyMachine, machine_b: MealyMachine) -> bool:
    """Do the machines differ only by state names?"""
    return find_isomorphism(machine_a, machine_b) is not None
