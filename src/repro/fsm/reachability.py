"""Reachability and connectivity analysis for Mealy machines.

These checks back the benchmark-suite generators (synthetic machines must be
strongly connected to be credible controller specifications) and the
self-test session analysis (every state must be exercisable).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

from .machine import MealyMachine, Symbol


def reachable_states(machine: MealyMachine, start: Symbol = None) -> FrozenSet[Symbol]:
    """States reachable from ``start`` (default: the reset state)."""
    if start is None:
        start = machine.reset_state
    succ = machine.succ_table
    seen: Set[int] = {machine.state_index(start)}
    stack: List[int] = [machine.state_index(start)]
    while stack:
        s = stack.pop()
        for t in succ[s]:
            if t not in seen:
                seen.add(t)
                stack.append(t)
    return frozenset(machine.states[s] for s in seen)


def is_connected(machine: MealyMachine) -> bool:
    """Is every state reachable from the reset state?"""
    return len(reachable_states(machine)) == machine.n_states


def strongly_connected_components(
    machine: MealyMachine,
) -> Tuple[FrozenSet[Symbol], ...]:
    """Tarjan's SCC algorithm on the state-transition graph (iterative)."""
    succ = machine.succ_table
    n = machine.n_states
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[int] = []
    components: List[FrozenSet[Symbol]] = []
    counter = [0]

    for root in range(n):
        if root in index_of:
            continue
        work: List[Tuple[int, int]] = [(root, 0)]
        while work:
            node, edge_position = work.pop()
            if edge_position == 0:
                index_of[node] = lowlink[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            neighbours = succ[node]
            for position in range(edge_position, len(neighbours)):
                target = neighbours[position]
                if target not in index_of:
                    work.append((node, position + 1))
                    work.append((target, 0))
                    advanced = True
                    break
                if target in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[target])
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(frozenset(machine.states[s] for s in component))
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
    return tuple(components)


def is_strongly_connected(machine: MealyMachine) -> bool:
    """Does every state reach every other state?"""
    return len(strongly_connected_components(machine)) == 1
