"""KISS2 reader/writer for Mealy machines.

KISS2 is the FSM interchange format of the MCNC/IWLS benchmark sets the
paper evaluates on.  A file consists of header directives and one line per
transition::

    .i 1          # number of input bits
    .o 1          # number of output bits
    .s 8          # number of states (optional, derived otherwise)
    .p 16         # number of transition lines (optional)
    .r st0        # reset state (optional; default: first mentioned state)
    0 st0 st4 0   # <input-bits> <state> <next-state> <output-bits>
    ...
    .e            # optional end marker

Input fields may contain ``-`` (don't care); such lines are expanded into
all matching fully specified input vectors.  Since this library follows the
paper in requiring *fully specified* machines, the parser checks that after
expansion every (state, input vector) occurs exactly once.

Input and output bit-vectors are kept as opaque string symbols on the
machine (e.g. input alphabet ``("00", "01", "10", "11")``), which preserves
round-tripping and matches how state-of-the-art tools treat KISS symbols.
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import KissFormatError
from .machine import MealyMachine


def _expand_dont_cares(field: str) -> Iterable[str]:
    """All fully specified bit-vectors matching ``field`` (may contain '-')."""
    positions = [i for i, ch in enumerate(field) if ch == "-"]
    if not positions:
        yield field
        return
    chars = list(field)
    for bits in product("01", repeat=len(positions)):
        for position, bit in zip(positions, bits):
            chars[position] = bit
        yield "".join(chars)


def loads(text: str, name: str = "kiss") -> MealyMachine:
    """Parse KISS2 text into a fully specified :class:`MealyMachine`."""
    n_input_bits = None
    n_output_bits = None
    declared_states = None
    declared_products = None
    reset_state = None
    transitions: Dict[Tuple[str, str], Tuple[str, str]] = {}
    state_order: List[str] = []
    line_count = 0

    def note_state(state: str) -> None:
        if state not in seen_states:
            seen_states.add(state)
            state_order.append(state)

    seen_states = set()

    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            tokens = line.split()
            directive = tokens[0]
            if directive == ".e":
                break
            if directive in (".i", ".o", ".s", ".p"):
                if len(tokens) != 2 or not tokens[1].isdigit():
                    raise KissFormatError(
                        f"line {line_number}: malformed directive {line!r}"
                    )
                value = int(tokens[1])
                if directive == ".i":
                    n_input_bits = value
                elif directive == ".o":
                    n_output_bits = value
                elif directive == ".s":
                    declared_states = value
                else:
                    declared_products = value
            elif directive == ".r":
                if len(tokens) != 2:
                    raise KissFormatError(
                        f"line {line_number}: malformed reset directive {line!r}"
                    )
                reset_state = tokens[1]
            else:
                raise KissFormatError(
                    f"line {line_number}: unknown directive {directive!r}"
                )
            continue

        tokens = line.split()
        if len(tokens) != 4:
            raise KissFormatError(
                f"line {line_number}: expected 4 fields, got {len(tokens)}: {line!r}"
            )
        input_field, state, next_state, output_field = tokens
        if n_input_bits is not None and len(input_field) != n_input_bits:
            raise KissFormatError(
                f"line {line_number}: input field {input_field!r} does not have "
                f"{n_input_bits} bits"
            )
        if n_output_bits is not None and len(output_field) != n_output_bits:
            raise KissFormatError(
                f"line {line_number}: output field {output_field!r} does not have "
                f"{n_output_bits} bits"
            )
        if not set(input_field) <= set("01-"):
            raise KissFormatError(
                f"line {line_number}: invalid input field {input_field!r}"
            )
        if not set(output_field) <= set("01"):
            raise KissFormatError(
                f"line {line_number}: invalid output field {output_field!r} "
                "(output don't cares would make the machine incompletely specified)"
            )
        line_count += 1
        note_state(state)
        note_state(next_state)
        for vector in _expand_dont_cares(input_field):
            key = (state, vector)
            if key in transitions:
                raise KissFormatError(
                    f"line {line_number}: duplicate transition for state "
                    f"{state!r}, input {vector!r}"
                )
            transitions[key] = (next_state, output_field)

    if not transitions:
        raise KissFormatError("no transitions found")
    if n_input_bits is None:
        n_input_bits = len(next(iter(transitions))[1])
    if declared_states is not None and declared_states != len(state_order):
        raise KissFormatError(
            f".s declares {declared_states} states but {len(state_order)} appear"
        )
    if declared_products is not None and declared_products != line_count:
        raise KissFormatError(
            f".p declares {declared_products} lines but {line_count} appear"
        )

    input_symbols = ["".join(bits) for bits in product("01", repeat=n_input_bits)]
    missing = [
        (state, vector)
        for state in state_order
        for vector in input_symbols
        if (state, vector) not in transitions
    ]
    if missing:
        state, vector = missing[0]
        raise KissFormatError(
            f"machine is incompletely specified: no transition for state "
            f"{state!r}, input {vector!r} ({len(missing)} missing in total)"
        )

    output_symbols = sorted({output for (_, output) in transitions.values()})
    return MealyMachine(
        name,
        state_order,
        input_symbols,
        output_symbols,
        transitions,
        reset_state=reset_state,
    )


def load(path: str, name: Optional[str] = None) -> MealyMachine:
    """Read a KISS2 file from ``path``."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name is None:
        name = str(path).rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return loads(text, name)


def dumps(machine: MealyMachine) -> str:
    """Serialise a machine to KISS2 text.

    If the machine's input symbols are not already equal-width binary
    strings, inputs are re-encoded as fixed-width binary indices (and
    likewise for outputs); the mapping is order-preserving so a round trip
    through :func:`loads` yields an isomorphic machine.
    """
    inputs = [str(i) for i in machine.inputs]
    if not _is_binary_alphabet(inputs):
        inputs = _index_codes(len(inputs))
    outputs = [str(o) for o in machine.outputs]
    if not all(set(o) <= set("01") for o in outputs) or len({len(o) for o in outputs}) != 1:
        outputs = _index_codes(len(outputs))
    state_names = _safe_state_names(machine.states)

    # KISS2 machines are complete over all 2^k input vectors.  If the
    # symbolic alphabet is not a power of two, the unused vectors are padded
    # with the behaviour of the first input; the parsed machine then
    # *realizes* the original in the sense of Definition 3 (iota maps each
    # original input to its code, and the padded columns are never in the
    # image of iota).
    width = len(inputs[0])
    pad_vectors = [
        "".join(bits)
        for bits in product("01", repeat=width)
        if "".join(bits) not in set(inputs)
    ]

    columns = list(range(machine.n_inputs)) + [0] * len(pad_vectors)
    vectors = inputs + pad_vectors
    lines = [
        f".i {width}",
        f".o {len(outputs[0])}",
        f".s {machine.n_states}",
        f".p {machine.n_states * len(vectors)}",
        f".r {state_names[machine.state_index(machine.reset_state)]}",
    ]
    for s in range(machine.n_states):
        for vector, column in zip(vectors, columns):
            next_state = state_names[machine.succ_table[s][column]]
            output = outputs[machine.out_table[s][column]]
            lines.append(f"{vector} {state_names[s]} {next_state} {output}")
    lines.append(".e")
    return "\n".join(lines) + "\n"


def _safe_state_names(states: Sequence[object]) -> List[str]:
    """Whitespace-free unique tokens for KISS state fields.

    Product-machine states are tuples whose ``str()`` contains spaces,
    which would corrupt the 4-field line format; such names are rewritten
    in place (order-preserving, collision-checked).
    """
    names = []
    for state in states:
        token = "".join(str(state).split())
        names.append(token)
    if len(set(names)) != len(names):
        names = [f"s{k}" for k in range(len(names))]
    return names


def dump(machine: MealyMachine, path: str) -> None:
    """Write a machine to ``path`` in KISS2 format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(machine))


def _is_binary_alphabet(symbols: List[str]) -> bool:
    """Equal-width binary strings covering exactly all 2^k combinations."""
    if not symbols:
        return False
    width = len(symbols[0])
    if any(len(s) != width or not set(s) <= set("01") for s in symbols):
        return False
    return len(symbols) == 2 ** width and len(set(symbols)) == len(symbols)


def _index_codes(count: int) -> List[str]:
    """Fixed-width binary encodings of ``0 .. count-1`` (width >= 1)."""
    width = max(1, (count - 1).bit_length())
    return [format(k, f"0{width}b") for k in range(count)]
