"""Trace simulation of Mealy machines.

Used for behavioural (input/output) equivalence checking between a
specification and its self-testable realization, and by the examples.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import FsmError
from .machine import MealyMachine, Symbol


@dataclass(frozen=True)
class Trace:
    """A simulated run: the visited states and produced outputs.

    ``states`` has one more entry than ``inputs``/``outputs`` (it includes
    the start state).
    """

    inputs: Tuple[Symbol, ...]
    states: Tuple[Symbol, ...]
    outputs: Tuple[Symbol, ...]

    def __len__(self) -> int:
        return len(self.inputs)


def simulate(
    machine: MealyMachine,
    input_sequence: Sequence[Symbol],
    start: Symbol = None,
) -> Trace:
    """Run ``machine`` on ``input_sequence`` from ``start`` (default reset)."""
    state = machine.reset_state if start is None else start
    machine.state_index(state)  # validate early
    states: List[Symbol] = [state]
    outputs: List[Symbol] = []
    for symbol in input_sequence:
        state, output = machine.step(state, symbol)
        states.append(state)
        outputs.append(output)
    return Trace(tuple(input_sequence), tuple(states), tuple(outputs))


def output_sequence(
    machine: MealyMachine,
    input_sequence: Sequence[Symbol],
    start: Symbol = None,
) -> Tuple[Symbol, ...]:
    """Only the outputs of :func:`simulate`."""
    return simulate(machine, input_sequence, start).outputs


def random_input_sequence(
    machine: MealyMachine, length: int, seed: int = 0
) -> Tuple[Symbol, ...]:
    """A reproducible random input word over the machine's input alphabet."""
    rng = random.Random(seed)
    return tuple(rng.choice(machine.inputs) for _ in range(length))


def io_equivalent(
    machine_a: MealyMachine,
    start_a: Symbol,
    machine_b: MealyMachine,
    start_b: Symbol,
    input_map: Optional[Dict[Symbol, Symbol]] = None,
    output_map: Optional[Dict[Symbol, Symbol]] = None,
) -> bool:
    """Exact input/output equivalence of two initialized machines.

    Performs a product-machine reachability sweep: the pair of start states
    must produce identical (mapped) outputs on every reachable pair and
    every input.  ``input_map`` translates an input of ``machine_a`` into
    one of ``machine_b`` (default: identity on symbols); ``output_map``
    translates an output of ``machine_b`` back into one of ``machine_a``
    (default: identity).  This is exactly the shape of Definition 3's
    ``iota`` and ``zeta`` mappings.
    """
    if input_map is None:
        input_map = {i: i for i in machine_a.inputs}
        for symbol in machine_a.inputs:
            if symbol not in machine_b.inputs:
                raise FsmError(
                    f"input {symbol!r} missing from second machine; pass input_map"
                )
    if output_map is None:
        output_map = {o: o for o in machine_b.outputs}

    pair = (machine_a.state_index(start_a), machine_b.state_index(start_b))
    seen = {pair}
    stack = [pair]
    succ_a, out_a = machine_a.succ_table, machine_a.out_table
    succ_b, out_b = machine_b.succ_table, machine_b.out_table
    mapped_input = [
        machine_b.input_index(input_map[symbol]) for symbol in machine_a.inputs
    ]
    while stack:
        a, b = stack.pop()
        for i in range(machine_a.n_inputs):
            j = mapped_input[i]
            output_a = machine_a.outputs[out_a[a][i]]
            output_b = output_map[machine_b.outputs[out_b[b][j]]]
            if output_a != output_b:
                return False
            next_pair = (succ_a[a][i], succ_b[b][j])
            if next_pair not in seen:
                seen.add(next_pair)
                stack.append(next_pair)
    return True
