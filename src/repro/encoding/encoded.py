"""Bit-level views of machines and pipeline realizations.

The synthesis flow lowers symbolic machines onto hardware in two steps:
choose encodings for states/inputs/outputs, then derive the truth tables of
the combinational blocks.  This module produces those truth tables:

* :func:`encode_machine` -- the classic Figure-1 controller: one block
  ``C`` computing (next state bits, output bits) from (state bits, input
  bits);
* :func:`encode_realization` -- the paper's Figure-4/8 structure: separate
  blocks ``C1`` (``delta1``), ``C2`` (``delta2``) and the output function
  ``lambda*``.

Rows not covered by any (state, input) pair -- unused codes -- are left
unspecified and become don't-cares for the logic minimizer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..exceptions import EncodingError
from ..fsm import MealyMachine
from ..ostr.theorem1 import PipelineRealization
from .codes import Encoding, make_encoding


@dataclass(frozen=True)
class TruthTable:
    """An incompletely specified multi-output Boolean function.

    ``rows`` maps fully specified input minterm strings to output strings;
    input combinations absent from ``rows`` are don't-cares.  Output strings
    are over ``"01"`` (specified outputs only; per-output don't-cares are
    not needed by this flow).
    """

    name: str
    input_names: Tuple[str, ...]
    output_names: Tuple[str, ...]
    rows: Dict[str, str]

    @property
    def n_inputs(self) -> int:
        return len(self.input_names)

    @property
    def n_outputs(self) -> int:
        return len(self.output_names)

    def __post_init__(self) -> None:
        for pattern, value in self.rows.items():
            if len(pattern) != self.n_inputs or not set(pattern) <= {"0", "1"}:
                raise EncodingError(f"bad input row {pattern!r}")
            if len(value) != self.n_outputs or not set(value) <= {"0", "1"}:
                raise EncodingError(f"bad output row {value!r}")

    def specified_fraction(self) -> float:
        """Fraction of the input space with specified outputs."""
        return len(self.rows) / (2 ** self.n_inputs) if self.n_inputs else 1.0

    def output_column(self, position: int) -> Tuple[List[str], List[str]]:
        """(on-set, dc-set) minterm lists for one output bit."""
        on_set = [row for row, value in self.rows.items() if value[position] == "1"]
        dc_set = [
            format(value, f"0{self.n_inputs}b")
            for value in range(2 ** self.n_inputs)
            if format(value, f"0{self.n_inputs}b") not in self.rows
        ]
        return on_set, dc_set


@dataclass(frozen=True)
class EncodedMachine:
    """Figure-1 view: a single combinational block plus the register R."""

    machine: MealyMachine
    state_encoding: Encoding
    input_encoding: Encoding
    output_encoding: Encoding
    table: TruthTable  # inputs: state bits + input bits; outputs: next state + outputs

    @property
    def state_bits(self) -> int:
        return self.state_encoding.width

    @property
    def flipflops(self) -> int:
        return self.state_encoding.width


def _names(prefix: str, width: int) -> Tuple[str, ...]:
    return tuple(f"{prefix}{position}" for position in range(width))


def encode_machine(
    machine: MealyMachine,
    state_style: str = "binary",
    input_style: str = "binary",
    output_style: str = "binary",
) -> EncodedMachine:
    """Lower a machine to the Figure-1 single-block truth table."""
    state_encoding = make_encoding(machine.states, state_style)
    input_encoding = make_encoding(machine.inputs, input_style)
    output_encoding = make_encoding(machine.outputs, output_style)

    rows: Dict[str, str] = {}
    for state in machine.states:
        for symbol in machine.inputs:
            next_state, output = machine.step(state, symbol)
            pattern = state_encoding.encode(state) + input_encoding.encode(symbol)
            rows[pattern] = state_encoding.encode(next_state) + output_encoding.encode(
                output
            )
    table = TruthTable(
        name=f"{machine.name}.C",
        input_names=_names("s", state_encoding.width) + _names("x", input_encoding.width),
        output_names=_names("ns", state_encoding.width)
        + _names("z", output_encoding.width),
        rows=rows,
    )
    return EncodedMachine(machine, state_encoding, input_encoding, output_encoding, table)


@dataclass(frozen=True)
class EncodedRealization:
    """Figure-4 view: blocks C1, C2 and lambda*, plus registers R1 and R2.

    * ``c1``:     inputs ``r1 bits + x bits`` -> next ``r2`` bits (delta1);
    * ``c2``:     inputs ``r2 bits + x bits`` -> next ``r1`` bits (delta2);
    * ``lambda_``: inputs ``r1 + r2 + x bits`` -> output bits (lambda*).
    """

    realization: PipelineRealization
    r1_encoding: Encoding
    r2_encoding: Encoding
    input_encoding: Encoding
    output_encoding: Encoding
    c1: TruthTable
    c2: TruthTable
    lambda_: TruthTable

    @property
    def flipflops(self) -> int:
        return self.r1_encoding.width + self.r2_encoding.width

    @property
    def register_widths(self) -> Tuple[int, int]:
        return (self.r1_encoding.width, self.r2_encoding.width)


def encode_realization(
    realization: PipelineRealization,
    state_style: str = "binary",
    input_style: str = "binary",
    output_style: str = "binary",
) -> EncodedRealization:
    """Lower a Theorem-1 realization to the Figure-4 truth tables."""
    spec = realization.spec
    r1_encoding = make_encoding(realization.s1_blocks, state_style)
    r2_encoding = make_encoding(realization.s2_blocks, state_style)
    input_encoding = make_encoding(spec.inputs, input_style)
    output_encoding = make_encoding(spec.outputs, output_style)

    c1_rows: Dict[str, str] = {}
    for block in realization.s1_blocks:
        for symbol in spec.inputs:
            pattern = r1_encoding.encode(block) + input_encoding.encode(symbol)
            c1_rows[pattern] = r2_encoding.encode(realization.delta1[(block, symbol)])
    c2_rows: Dict[str, str] = {}
    for block in realization.s2_blocks:
        for symbol in spec.inputs:
            pattern = r2_encoding.encode(block) + input_encoding.encode(symbol)
            c2_rows[pattern] = r1_encoding.encode(realization.delta2[(block, symbol)])
    lambda_rows: Dict[str, str] = {}
    for block1 in realization.s1_blocks:
        for block2 in realization.s2_blocks:
            for symbol in spec.inputs:
                pattern = (
                    r1_encoding.encode(block1)
                    + r2_encoding.encode(block2)
                    + input_encoding.encode(symbol)
                )
                output = realization.machine.lam((block1, block2), symbol)
                lambda_rows[pattern] = output_encoding.encode(output)

    w1, w2 = r1_encoding.width, r2_encoding.width
    xw, zw = input_encoding.width, output_encoding.width
    c1 = TruthTable(
        name=f"{spec.name}.C1",
        input_names=_names("r1_", w1) + _names("x", xw),
        output_names=_names("nr2_", w2),
        rows=c1_rows,
    )
    c2 = TruthTable(
        name=f"{spec.name}.C2",
        input_names=_names("r2_", w2) + _names("x", xw),
        output_names=_names("nr1_", w1),
        rows=c2_rows,
    )
    lambda_ = TruthTable(
        name=f"{spec.name}.lambda",
        input_names=_names("r1_", w1) + _names("r2_", w2) + _names("x", xw),
        output_names=_names("z", zw),
        rows=lambda_rows,
    )
    return EncodedRealization(
        realization,
        r1_encoding,
        r2_encoding,
        input_encoding,
        output_encoding,
        c1,
        c2,
        lambda_,
    )
