"""State/input/output encodings and bit-level machine views."""

from .codes import (
    Encoding,
    binary_encoding,
    code_width,
    gray_encoding,
    make_encoding,
    one_hot_encoding,
)
from .encoded import (
    EncodedMachine,
    EncodedRealization,
    TruthTable,
    encode_machine,
    encode_realization,
)

__all__ = [
    "Encoding",
    "code_width",
    "binary_encoding",
    "gray_encoding",
    "one_hot_encoding",
    "make_encoding",
    "TruthTable",
    "EncodedMachine",
    "EncodedRealization",
    "encode_machine",
    "encode_realization",
]
