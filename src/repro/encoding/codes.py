"""Symbol-to-bit-vector encodings (state assignment substrate).

After the OSTR step, "state coding and logic minimization are then applied
to this realization" (Section 1 of the paper).  This module provides the
code styles used by the synthesis flow: minimum-length binary, Gray, and
one-hot, plus a pluggable :class:`Encoding` container that records the
symbol <-> bit-vector bijection.

Bit-vectors are strings over ``"01"`` (MSB first), the representation used
throughout the logic-synthesis layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Sequence, Tuple

from ..exceptions import EncodingError


def code_width(n_symbols: int) -> int:
    """Minimum bits distinguishing ``n_symbols`` values (0 for one symbol)."""
    if n_symbols < 1:
        raise EncodingError("cannot encode an empty symbol set")
    return max(0, (n_symbols - 1).bit_length())


@dataclass(frozen=True)
class Encoding:
    """An injective mapping from symbols to fixed-width bit-vectors."""

    symbols: Tuple[Hashable, ...]
    codes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.symbols) != len(self.codes):
            raise EncodingError("symbols and codes differ in length")
        if len(set(self.symbols)) != len(self.symbols):
            raise EncodingError("duplicate symbols")
        if len(set(self.codes)) != len(self.codes):
            raise EncodingError("codes are not injective")
        widths = {len(code) for code in self.codes}
        if len(widths) > 1:
            raise EncodingError(f"codes have mixed widths: {sorted(widths)}")
        for code in self.codes:
            if not set(code) <= {"0", "1"}:
                raise EncodingError(f"invalid code {code!r}")

    @property
    def width(self) -> int:
        return len(self.codes[0]) if self.codes else 0

    def encode(self, symbol: Hashable) -> str:
        try:
            return self.codes[self.symbols.index(symbol)]
        except ValueError as exc:
            raise EncodingError(f"unknown symbol {symbol!r}") from exc

    def decode(self, code: str) -> Hashable:
        try:
            return self.symbols[self.codes.index(code)]
        except ValueError as exc:
            raise EncodingError(f"code {code!r} does not map to a symbol") from exc

    def mapping(self) -> Dict[Hashable, str]:
        return dict(zip(self.symbols, self.codes))

    def __len__(self) -> int:
        return len(self.symbols)


def binary_encoding(symbols: Sequence[Hashable]) -> Encoding:
    """Minimum-width binary encoding in symbol order (natural assignment)."""
    symbols = tuple(symbols)
    width = code_width(len(symbols))
    codes = tuple(format(index, f"0{width}b") if width else "" for index in range(len(symbols)))
    return Encoding(symbols, codes)


def gray_encoding(symbols: Sequence[Hashable]) -> Encoding:
    """Minimum-width Gray-code encoding (adjacent symbols differ in one bit)."""
    symbols = tuple(symbols)
    width = code_width(len(symbols))
    codes = tuple(
        format(index ^ (index >> 1), f"0{width}b") if width else ""
        for index in range(len(symbols))
    )
    return Encoding(symbols, codes)


def one_hot_encoding(symbols: Sequence[Hashable]) -> Encoding:
    """One flip-flop per symbol (used for encoding-style ablations)."""
    symbols = tuple(symbols)
    n = len(symbols)
    codes = tuple(
        "".join("1" if position == index else "0" for position in range(n))
        for index in range(n)
    )
    return Encoding(symbols, codes)


_STYLES = {
    "binary": binary_encoding,
    "gray": gray_encoding,
    "onehot": one_hot_encoding,
}


def make_encoding(symbols: Sequence[Hashable], style: str = "binary") -> Encoding:
    """Encoding factory by style name (``binary``, ``gray``, ``onehot``)."""
    try:
        factory = _STYLES[style]
    except KeyError as exc:
        raise EncodingError(
            f"unknown encoding style {style!r}; choose from {sorted(_STYLES)}"
        ) from exc
    return factory(symbols)
