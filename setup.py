from setuptools import find_packages, setup

setup(
    name="repro-self-testable-controllers",
    package_dir={"": "src"},
    packages=find_packages("src"),
    # int.bit_count() in the BIST register hot loops needs CPython >= 3.10.
    python_requires=">=3.10",
)
